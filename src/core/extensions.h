// Companion operators built on the UTK machinery.
//
// * ImmutableRegion — the maximal convex region around a weight vector where
//   the top-k *set* is unchanged (the result-sensitivity measure of Zhang et
//   al. [52], discussed in Section 2). Dual to UTK2: it answers "how wrong
//   can my weights be before the recommendation changes?", while UTK answers
//   "what are all recommendations within my uncertainty?".
// * MonochromaticReverseTopK — all sub-regions of R where a given record is
//   in the top-k (Vlachou et al. [48] / Tang et al. [45], Section 2); a thin
//   public wrapper over the constrained kSPR component.
// * ApplyPowerTransform — the Section 6 generalization: scoring functions
//   sum w_i * x_i^p (and, by extension, any per-attribute monotone f_i) are
//   handled by transforming attributes up front.
#ifndef UTK_CORE_EXTENSIONS_H_
#define UTK_CORE_EXTENSIONS_H_

#include <vector>

#include "core/kspr.h"
#include "core/utk.h"

namespace utk {

/// Result of an immutable-region computation.
struct ImmutableRegionResult {
  std::vector<int32_t> topk;      ///< the top-k set at the query vector
  ConvexRegion region;            ///< maximal region where it is unchanged
  QueryStats stats;
};

/// Computes the maximal convex region of the preference domain containing
/// `w` in which the top-k set equals the top-k set at `w`. The region is the
/// intersection of half-spaces S(t) >= S(q) for t in the top-k and q among
/// the potential challengers; with `prune` (default), challengers are
/// limited to the (k+1)-skyband, which provably suffices (tested against the
/// unpruned construction).
ImmutableRegionResult ImmutableRegion(const Dataset& data, const Vec& w,
                                      int k, bool prune = true);

/// All sub-regions of `r` where record `p` ranks among the top-k.
/// Competitors default to the whole dataset filtered by the k-skyband.
KsprResult MonochromaticReverseTopK(const Dataset& data, int32_t p,
                                    const ConvexRegion& r, int k,
                                    QueryStats* stats = nullptr);

/// Returns a copy of the dataset with every attribute raised to the power
/// `exponent` (> 0, monotone on non-negative attributes). Running UTK on the
/// transformed data answers UTK under S(p) = sum w_i * x_i^exponent.
Dataset ApplyPowerTransform(const Dataset& data, Scalar exponent);

/// Robustness of each UTK1 member: the fraction of the region (by uniform
/// weight sampling) where the record belongs to the top-k. Records of the
/// given UTK1 result are scored and returned sorted by decreasing
/// robustness; a natural presentation order for the "expanded preferences"
/// use case of Section 1. Monte-Carlo with `samples` draws — an estimate,
/// not exact geometry (the exact version is the volume of the record's
/// UTK2 cells).
struct RobustnessEntry {
  int32_t id;
  double fraction;  ///< share of sampled weight vectors with id in the top-k
};
std::vector<RobustnessEntry> RobustnessScores(const Dataset& data,
                                              const ConvexRegion& region,
                                              int k,
                                              const std::vector<int32_t>& utk1,
                                              int samples = 500,
                                              uint64_t seed = 42);

}  // namespace utk

#endif  // UTK_CORE_EXTENSIONS_H_
