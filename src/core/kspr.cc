#include "core/kspr.h"

#include <algorithm>

#include "geometry/linear.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace utk {

KsprResult Kspr(const Dataset& data, int32_t p,
                const std::vector<int32_t>& competitors,
                const ConvexRegion& r, int k, bool early_exit,
                QueryStats* stats) {
  UTK_SPAN_VAL("kspr.decide", static_cast<int64_t>(competitors.size()));
  static obs::Counter& decides =
      obs::MetricRegistry::Global().GetCounter("utk_kspr_decides_total");
  static obs::Counter& early_exits =
      obs::MetricRegistry::Global().GetCounter("utk_kspr_early_exits_total");
  decides.Add();
  KsprResult result;
  CellArrangement arr(r, stats);
  arr.set_freeze_threshold(k);

  // Insert stronger competitors first (higher score at the pivot), so cells
  // freeze as early as possible.
  std::vector<int32_t> order = competitors;
  auto pivot = r.Pivot();
  if (pivot.has_value()) {
    std::vector<Scalar> score(data.size());
    for (int32_t q : order) score[q] = Score(data[q], *pivot);
    std::sort(order.begin(), order.end(),
              [&](int32_t a, int32_t b) { return score[a] > score[b]; });
  }

  for (int32_t q : order) {
    if (q == p) continue;
    arr.Insert(q, BetterOrEqual(data[q], data[p]));
    if (early_exit && arr.AllFrozen()) {
      // Every cell already has k competitors above p: disqualified.
      early_exits.Add();
      return result;
    }
  }
  for (const Cell& c : arr.cells()) {
    if (c.Count() < k) {
      result.qualifies = true;
      if (early_exit) return result;
      result.topk_cells.push_back(c);
    }
  }
  return result;
}

}  // namespace utk
