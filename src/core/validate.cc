#include "core/validate.h"

#include <cmath>
#include <sstream>

namespace utk {

std::optional<std::string> ValidateDataset(const Dataset& data) {
  if (data.empty()) return "dataset is empty";
  const int dim = data.front().Dim();
  if (dim < 2) return "records need at least 2 attributes";
  for (size_t i = 0; i < data.size(); ++i) {
    const Record& r = data[i];
    if (r.id != static_cast<int32_t>(i)) {
      std::ostringstream os;
      os << "record at position " << i << " has id " << r.id
         << " (ids must equal positions)";
      return os.str();
    }
    if (r.Dim() != dim) {
      std::ostringstream os;
      os << "record " << i << " has " << r.Dim() << " attributes, expected "
         << dim;
      return os.str();
    }
    for (int d = 0; d < dim; ++d) {
      if (!std::isfinite(r.attrs[d])) {
        std::ostringstream os;
        os << "record " << i << " attribute " << d << " is not finite";
        return os.str();
      }
    }
  }
  return std::nullopt;
}

std::optional<std::string> ValidateQuery(const Dataset& data,
                                         const ConvexRegion& region, int k) {
  if (auto err = ValidateDataset(data)) return err;
  if (k < 1) return "k must be >= 1";
  const int pref_dim = DataDim(data) - 1;
  if (region.dim() != pref_dim) {
    std::ostringstream os;
    os << "region has dimension " << region.dim() << ", expected "
       << pref_dim << " (= data dimensionality - 1)";
    return os.str();
  }
  // The region must have interior and lie inside the weight simplex
  // (otherwise some 'preferences' would weigh an attribute negatively).
  ConvexRegion clipped = region;
  ConvexRegion domain = ConvexRegion::FullDomain(pref_dim);
  for (const Halfspace& h : domain.constraints()) clipped.AddConstraint(h);
  if (!clipped.HasInteriorPoint()) {
    return "query region has empty interior within the weight simplex";
  }
  return std::nullopt;
}

}  // namespace utk
