#include "core/naive.h"

#include <algorithm>

#include "common/rng.h"
#include "core/topk.h"
#include "geometry/linear.h"
#include "geometry/lp.h"
#include "obs/trace.h"
#include "skyline/rdominance.h"

namespace utk {

namespace {

// Depth-first search over the sign vectors of the competitors' half-spaces.
// Returns true iff some cell of R (with interior) lies inside fewer than
// `quota` of them.
bool ExistsCellBelowQuota(const std::vector<Halfspace>& cons,
                          const std::vector<Halfspace>& comps, size_t idx,
                          int count, int quota) {
  if (count >= quota) return false;
  if (idx == comps.size()) return true;
  // Try the outside branch first: it keeps the count unchanged, so it leads
  // toward witness cells; for disqualified records both branches die anyway.
  {
    std::vector<Halfspace> outside = cons;
    outside.push_back(comps[idx].Complement());
    if (HasInterior(outside) &&
        ExistsCellBelowQuota(outside, comps, idx + 1, count, quota)) {
      return true;
    }
  }
  {
    std::vector<Halfspace> inside = cons;
    inside.push_back(comps[idx]);
    if (HasInterior(inside) &&
        ExistsCellBelowQuota(inside, comps, idx + 1, count + 1, quota)) {
      return true;
    }
  }
  return false;
}

}  // namespace

bool NaiveUtk1Member(const Dataset& data, int32_t p, const ConvexRegion& r,
                     int k) {
  // Partition competitors into always-above (r-dominators), always-below,
  // and genuinely ambiguous ones; only the latter need enumeration.
  int always_above = 0;
  std::vector<Halfspace> ambiguous;
  for (const Record& q : data) {
    if (q.id == p) continue;
    switch (RDominance(q, data[p], r)) {
      case RDom::kDominates:
        if (++always_above >= k) return false;
        break;
      case RDom::kDominatedBy:
      case RDom::kEqual:
        break;
      case RDom::kIncomparable:
        ambiguous.push_back(BetterOrEqual(q, data[p]));
        break;
    }
  }
  // Branch on the half-spaces most likely to hold (largest slack at the
  // pivot) first, so the count >= quota cut-off prunes the DFS early.
  auto pivot = r.Pivot();
  if (pivot.has_value()) {
    std::sort(ambiguous.begin(), ambiguous.end(),
              [&](const Halfspace& a, const Halfspace& b) {
                return a.Slack(*pivot) > b.Slack(*pivot);
              });
  }
  return ExistsCellBelowQuota(r.constraints(), ambiguous, 0, 0,
                              k - always_above);
}

std::vector<int32_t> NaiveUtk1(const Dataset& data, const ConvexRegion& r,
                               int k) {
  UTK_SPAN_VAL("naive.enumerate", static_cast<int64_t>(data.size()));
  std::vector<int32_t> out;
  for (const Record& p : data)
    if (NaiveUtk1Member(data, p.id, r, k)) out.push_back(p.id);
  return out;
}

std::vector<std::pair<Vec, std::vector<int32_t>>> SampleTopkSets(
    const Dataset& data, const ConvexRegion& r, int k, int samples,
    uint64_t seed) {
  // Bounding box of R, per dimension.
  const int dim = r.dim();
  Vec lo(dim), hi(dim);
  for (int i = 0; i < dim; ++i) {
    Vec unit(dim, 0.0);
    unit[i] = 1.0;
    auto range = r.RangeOf(unit, 0.0);
    lo[i] = range->first;
    hi[i] = range->second;
  }

  Rng rng(seed);
  std::vector<std::pair<Vec, std::vector<int32_t>>> out;
  int guard = samples * 1000;
  while (static_cast<int>(out.size()) < samples && guard-- > 0) {
    Vec w(dim);
    for (int i = 0; i < dim; ++i) w[i] = rng.Uniform(lo[i], hi[i]);
    if (!r.Contains(w)) continue;
    out.emplace_back(w, TopK(data, w, k));
  }
  return out;
}

}  // namespace utk
