// Baseline UTK algorithms (Section 3.3): filter with the k-skyband (SK) or
// the k onion layers (ON), then decide each surviving candidate with a
// constrained monochromatic reverse top-k query (kSPR).
//
// UTK1: kSPR runs in early-exit mode (stop at the first qualifying cell).
// UTK2: kSPR runs to completion, producing all cells of R where the
// candidate is in the top-k — a per-record decomposition that is
// semantically equivalent to (but shaped differently from) JAA's common
// global arrangement, as the paper notes.
#ifndef UTK_CORE_BASELINE_H_
#define UTK_CORE_BASELINE_H_

#include "core/kspr.h"
#include "core/utk.h"
#include "exec/column_store.h"
#include "index/rtree.h"

namespace utk {

enum class BaselineFilter {
  kSkyband,  ///< SK: k-skyband candidates
  kOnion,    ///< ON: first k onion layers (always a subset of the skyband)
};

/// Per-record UTK2 output of the baseline.
struct BaselineUtk2Result {
  struct PerRecord {
    int32_t id;
    std::vector<Cell> cells;  ///< sub-regions of R where `id` is in top-k
  };
  std::vector<PerRecord> records;
  QueryStats stats;

  /// Total number of cells across records (the baseline's output volume).
  int64_t TotalCells() const;
  /// Record ids with at least one cell (equals the UTK1 answer).
  std::vector<int32_t> AllRecords() const;
};

class Baseline {
 public:
  explicit Baseline(BaselineFilter filter) : filter_(filter) {}

  /// UTK1 via filter + early-exit kSPR per candidate. `cols`, when
  /// non-null, must mirror `data`; the SK filter then probes its skyband
  /// membership through the batched kernel (skyline/skyband.h).
  Utk1Result RunUtk1(const Dataset& data, const RTree& tree,
                     const ConvexRegion& r, int k,
                     const ColumnStore* cols = nullptr) const;

  /// UTK2 via filter + full kSPR per candidate.
  BaselineUtk2Result RunUtk2(const Dataset& data, const RTree& tree,
                             const ConvexRegion& r, int k,
                             const ColumnStore* cols = nullptr) const;

  /// The filtering step alone (candidate record ids).
  std::vector<int32_t> FilterCandidates(const Dataset& data,
                                        const RTree& tree, int k,
                                        QueryStats* stats = nullptr,
                                        const ColumnStore* cols = nullptr)
      const;

 private:
  BaselineFilter filter_;
};

}  // namespace utk

#endif  // UTK_CORE_BASELINE_H_
