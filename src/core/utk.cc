#include "core/utk.h"

#include <algorithm>

namespace utk {

std::vector<int32_t> Utk2Result::AllRecords() const {
  std::vector<int32_t> all;
  size_t total = 0;
  for (const Utk2Cell& c : cells) total += c.topk.size();
  all.reserve(total);
  for (const Utk2Cell& c : cells)
    all.insert(all.end(), c.topk.begin(), c.topk.end());
  std::sort(all.begin(), all.end());
  all.erase(std::unique(all.begin(), all.end()), all.end());
  return all;
}

namespace {

bool CellLess(const Utk2Cell& a, const Utk2Cell& b) {
  if (a.topk != b.topk) return a.topk < b.topk;
  if (a.witness != b.witness) return a.witness < b.witness;
  return a.bounds.size() < b.bounds.size();
}

}  // namespace

void Utk2Result::Canonicalize() {
  std::stable_sort(cells.begin(), cells.end(), CellLess);
}

bool Utk2Result::IsCanonical() const {
  for (size_t i = 1; i < cells.size(); ++i)
    if (CellLess(cells[i], cells[i - 1])) return false;
  return true;
}

int64_t Utk2Result::NumDistinctTopkSets() const {
  // Cell top-k sets are already sorted ascending (the algorithms emit them
  // that way), so sorting the flat list of sets and deduplicating adjacent
  // duplicates counts distinct sets without a node-per-set std::set.
  std::vector<std::vector<int32_t>> sets;
  sets.reserve(cells.size());
  for (const Utk2Cell& c : cells) {
    std::vector<int32_t> s = c.topk;
    if (!std::is_sorted(s.begin(), s.end())) std::sort(s.begin(), s.end());
    sets.push_back(std::move(s));
  }
  std::sort(sets.begin(), sets.end());
  sets.erase(std::unique(sets.begin(), sets.end()), sets.end());
  return static_cast<int64_t>(sets.size());
}

}  // namespace utk
