#include "core/utk.h"

#include <algorithm>
#include <set>

namespace utk {

std::vector<int32_t> Utk2Result::AllRecords() const {
  std::set<int32_t> all;
  for (const Utk2Cell& c : cells) all.insert(c.topk.begin(), c.topk.end());
  return {all.begin(), all.end()};
}

int64_t Utk2Result::NumDistinctTopkSets() const {
  std::set<std::vector<int32_t>> sets;
  for (const Utk2Cell& c : cells) {
    std::vector<int32_t> s = c.topk;
    std::sort(s.begin(), s.end());
    sets.insert(std::move(s));
  }
  return static_cast<int64_t>(sets.size());
}

}  // namespace utk
