#include "core/extensions.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <map>
#include <set>

#include "core/naive.h"
#include "core/topk.h"
#include "geometry/linear.h"
#include "index/rtree.h"
#include "skyline/skyband.h"

namespace utk {

ImmutableRegionResult ImmutableRegion(const Dataset& data, const Vec& w,
                                      int k, bool prune) {
  ImmutableRegionResult out;
  Timer timer;
  out.topk = TopK(data, w, k);
  std::set<int32_t> top_set(out.topk.begin(), out.topk.end());

  // Challenger pool: records that could overtake a top-k member somewhere.
  // Any record q outside the (k+1)-skyband is dominated by more than k
  // others; wherever q would outscore a top-k member t, so would its k+1
  // dominators, and at least one of them lies outside the top-k set — whose
  // pairwise constraint is already part of the intersection. Hence the
  // (k+1)-skyband challengers define the same region.
  std::vector<int32_t> challengers;
  if (prune) {
    RTree tree = RTree::BulkLoad(data);
    for (int32_t id : KSkyband(data, tree, k + 1, &out.stats)) {
      if (top_set.count(id) == 0) challengers.push_back(id);
    }
  } else {
    for (const Record& q : data) {
      if (top_set.count(q.id) == 0) challengers.push_back(q.id);
    }
  }

  // The region: every member stays >= every challenger. The domain simplex
  // bounds keep the region closed.
  const int pref_dim = DataDim(data) - 1;
  ConvexRegion region = ConvexRegion::FullDomain(pref_dim);
  for (int32_t t : out.topk) {
    for (int32_t q : challengers) {
      Halfspace h = BetterOrEqual(data[t], data[q]);
      if (!IsTrivial(h)) region.AddConstraint(h);
    }
  }
  out.region = std::move(region);
  assert(out.region.Contains(w, 1e-7));
  out.stats.elapsed_ms = timer.ElapsedMs();
  return out;
}

KsprResult MonochromaticReverseTopK(const Dataset& data, int32_t p,
                                    const ConvexRegion& r, int k,
                                    QueryStats* stats) {
  RTree tree = RTree::BulkLoad(data);
  std::vector<int32_t> cands = KSkyband(data, tree, k, stats);
  // p itself may be outside the k-skyband (then it can never qualify, and
  // kSPR will correctly report no cells).
  return Kspr(data, p, cands, r, k, /*early_exit=*/false, stats);
}

std::vector<RobustnessEntry> RobustnessScores(const Dataset& data,
                                              const ConvexRegion& region,
                                              int k,
                                              const std::vector<int32_t>& utk1,
                                              int samples, uint64_t seed) {
  std::map<int32_t, int> hits;
  for (int32_t id : utk1) hits[id] = 0;
  auto probes = SampleTopkSets(data, region, k, samples, seed);
  for (const auto& [w, topk] : probes) {
    for (int32_t id : topk) {
      auto it = hits.find(id);
      if (it != hits.end()) ++it->second;
    }
  }
  std::vector<RobustnessEntry> out;
  out.reserve(hits.size());
  const double denom = probes.empty() ? 1.0 : static_cast<double>(probes.size());
  for (const auto& [id, count] : hits)
    out.push_back({id, static_cast<double>(count) / denom});
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.fraction != b.fraction) return a.fraction > b.fraction;
    return a.id < b.id;
  });
  return out;
}

Dataset ApplyPowerTransform(const Dataset& data, Scalar exponent) {
  assert(exponent > 0.0);
  Dataset out = data;
  for (Record& rec : out) {
    for (Scalar& v : rec.attrs) {
      assert(v >= 0.0 && "power transform requires non-negative attributes");
      v = std::pow(v, exponent);
    }
  }
  return out;
}

}  // namespace utk
