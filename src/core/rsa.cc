#include "core/rsa.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <limits>
#include <numeric>

#include "arrangement/arrangement.h"
#include "common/parallel.h"
#include "core/drill.h"
#include "exec/kernels.h"
#include "geometry/linear.h"
#include "obs/trace.h"
#include "skyline/rskyband.h"

namespace utk {

namespace {

// Shared state for the verification of one candidate.
struct VerifyContext {
  const Dataset& data;
  const RSkybandResult& band;
  const ColumnStore& band_cols;   // gathered SoA mirror: row i = band.ids[i]
  std::vector<Scalar>* scratch;   // |band| score buffer for batched kernels
  const RDominanceGraph& g;
  const Rsa::Options& options;
  int cand;              // candidate node index
  AffineScore cand_score;
  QueryStats* stats;
};

// Counts nodes outside `ignored` (and active in G) that score strictly above
// the candidate at w. Exact within kEps. One batched ScoreAll sweep over the
// gathered band columns replaces the per-record Score() pointer chase; the
// kernel is bit-identical to Score(), so the comparisons are unchanged.
int CountStrictlyBetter(const VerifyContext& ctx, const Bitset& ignored,
                        const Vec& w) {
  const Scalar s = ctx.cand_score.Eval(w);
  ScoreAll(ctx.band_cols, w, ctx.scratch->data());
  int count = 0;
  const auto& active = ctx.g.Active();
  for (int i = 0; i < ctx.g.size(); ++i) {
    if (i == ctx.cand || !active.Test(i) || ignored.Test(i)) continue;
    if (EpsGt((*ctx.scratch)[i], s)) ++count;
  }
  return count;
}

// Recursive verification (Algorithm 2) of ctx.cand inside the cell described
// by (bounds, interior, radius), with rank quota `quota` and ignore set
// `ignored`. Returns true iff some sub-partition admits the candidate into
// the top-k. `lanes` > 1 evaluates the promising partitions of THIS level
// concurrently (Refine passes options.refine_threads at the top level only;
// every recursive call passes 1 — the top level owns the fan-out, and
// nesting would oversubscribe the pool for no extra win).
bool Verify(const VerifyContext& ctx, const std::vector<Halfspace>& bounds,
            const Vec& interior, Scalar radius, int quota,
            const Bitset& ignored, int lanes);

// One promising partition of a Verify level: Lemma-1 confirmation first,
// else recursion with the reduced quota. Pure function of its arguments plus
// ctx's scratch/stats sinks — the parallel path hands each task a private
// VerifyContext (own scratch, own QueryStats) so tasks share only
// read-only state.
bool VerifyCell(const VerifyContext& ctx, const CellArrangement& arr, int c,
                int quota, const Bitset& ignored, const Bitset& inserted,
                const Bitset& competitors) {
  const Cell& cell = arr.cells()[c];
  Bitset covering(ctx.g.size());
  for (int id : cell.covering) covering.Set(id);
  // not_covering = inserted half-spaces that do NOT cover this cell; by
  // Lemma 1, competitors r-dominated by any of them cannot beat the
  // candidate inside the cell.
  Bitset not_covering = inserted;
  not_covering.SubtractWith(covering);

  Bitset remaining = competitors;
  remaining.SubtractWith(inserted);
  bool confirmed = true;
  Bitset disregarded(ctx.g.size());
  remaining.ForEach([&](int q) {
    if (ctx.options.use_lemma1 &&
        ctx.g.Ancestors(q).Intersects(not_covering)) {
      disregarded.Set(q);
    } else {
      confirmed = false;
    }
  });
  if (confirmed) return true;  // Lemma 1 froze the count below the quota

  // Recurse into the promising partition with a reduced quota; inserted
  // and disregarded competitors are accounted for and ignored below.
  Bitset next_ignored = ignored;
  next_ignored.UnionWith(inserted);
  next_ignored.UnionWith(disregarded);
  const int next_quota = quota - cell.Count();
  assert(next_quota >= 1);
  return Verify(ctx, cell.bounds, cell.interior, cell.radius, next_quota,
                next_ignored, /*lanes=*/1);
}

bool Verify(const VerifyContext& ctx, const std::vector<Halfspace>& bounds,
            const Vec& interior, Scalar radius, int quota,
            const Bitset& ignored, int lanes) {
  assert(quota >= 1);
  if (ctx.stats != nullptr) ++ctx.stats->verify_calls;

  // Drill (Section 4.3): a top-k probe at the score-maximizing vector.
  if (ctx.options.use_drill) {
    auto w = DrillVector(ctx.cand_score, bounds, ctx.stats);
    const Vec& probe = w.has_value() ? *w : interior;
    if (CountStrictlyBetter(ctx, ignored, probe) < quota) return true;
  } else if (CountStrictlyBetter(ctx, ignored, interior) < quota) {
    // Even without the LP drill, the cached interior point gives a free
    // membership witness.
    return true;
  }

  // Competitors: active nodes outside the ignore set, other than the
  // candidate itself.
  Bitset competitors = ctx.g.Active();
  competitors.SubtractWith(ignored);
  competitors.Reset(ctx.cand);
  if (competitors.Count() == 0) return true;  // nobody can outrank it

  // Local arrangement with half-spaces of the strongest competitors (local
  // r-dominance count 0, i.e. no r-dominator among the competitors). With a
  // wave cap, only the highest-scoring of them (at the cell's interior) are
  // inserted now; the rest stay competitors for the recursive calls, which
  // descend only into promising partitions. Cells whose count reaches the
  // quota are frozen: they can never become promising, so their geometry
  // needs no further refinement.
  CellArrangement arr(bounds, interior, radius, ctx.stats);
  arr.set_freeze_threshold(quota);
  std::vector<int> wave;
  competitors.ForEach([&](int i) {
    if (!ctx.g.Ancestors(i).Intersects(competitors)) wave.push_back(i);
  });
  if (ctx.options.wave_cap > 0 &&
      static_cast<int>(wave.size()) > ctx.options.wave_cap) {
    // Batched scores at the interior once; the sort compares flat scalars.
    ScoreAll(ctx.band_cols, interior, ctx.scratch->data());
    const std::vector<Scalar>& sc = *ctx.scratch;
    std::partial_sort(
        wave.begin(), wave.begin() + ctx.options.wave_cap, wave.end(),
        [&](int a, int b) { return sc[a] > sc[b]; });
    wave.resize(ctx.options.wave_cap);
  }
  Bitset inserted(ctx.g.size());
  {
    UTK_SPAN_VAL("arrangement.build", static_cast<int64_t>(wave.size()));
    for (int i : wave) {
      arr.Insert(i, BetterOrEqual(ctx.data[ctx.band.ids[i]],
                                  ctx.data[ctx.band.ids[ctx.cand]]));
      inserted.Set(i);
    }
  }

  // Promising partitions: cells whose covering count is below the quota,
  // most covered first (Section 4.2's ordering heuristic).
  std::vector<int> promising;
  for (int c = 0; c < static_cast<int>(arr.cells().size()); ++c)
    if (arr.cells()[c].Count() < quota) promising.push_back(c);
  std::sort(promising.begin(), promising.end(), [&](int a, int b) {
    return arr.cells()[a].Count() > arr.cells()[b].Count();
  });

  const int tasks = static_cast<int>(promising.size());
  if (lanes <= 1 || tasks <= 1) {
    for (int c : promising) {
      if (VerifyCell(ctx, arr, c, quota, ignored, inserted, competitors))
        return true;
    }
    return false;
  }

  // Speculative parallel walk of the promising partitions. Tasks evaluate
  // out of order on the shared pool, but outcomes commit strictly in cell
  // order up to (and including) the first success — exactly the prefix the
  // serial loop would have executed. The speculation cut is sound: a task
  // is skipped only when a success at a LOWER index already exists, and
  // the committed walk stops at the minimal success, so it never reaches a
  // skipped index. Tasks past the first success may run to completion; all
  // their side effects live in task-private scratch/stats and are dropped.
  struct CellTask {
    bool ok = false;
    QueryStats stats;
    int64_t us = 0;
  };
  std::vector<CellTask> results(tasks);
  std::atomic<int> first_ok{std::numeric_limits<int>::max()};
  const int width = std::min(lanes, tasks);
  ParallelFor(tasks, width, [&](int idx) {
    if (idx > first_ok.load(std::memory_order_acquire)) return;
    Timer t;
    CellTask& res = results[idx];
    std::vector<Scalar> local_scratch(ctx.scratch->size());
    VerifyContext local = ctx;
    local.scratch = &local_scratch;
    local.stats = &res.stats;
    res.ok = VerifyCell(local, arr, promising[idx], quota, ignored, inserted,
                        competitors);
    res.us = static_cast<int64_t>(t.ElapsedMs() * 1000.0);
    if (res.ok) {
      int cur = first_ok.load(std::memory_order_relaxed);
      while (idx < cur &&
             !first_ok.compare_exchange_weak(cur, idx,
                                             std::memory_order_acq_rel)) {
      }
    }
  });

  // Commit the serial prefix: cells [0, s] where s is the first success
  // (every index <= s provably ran), or all cells when none succeeded.
  int s = -1;
  for (int i = 0; i < tasks; ++i) {
    if (results[i].ok) {
      s = i;
      break;
    }
  }
  const int committed = s >= 0 ? s + 1 : tasks;
  int64_t sum_us = 0, max_us = 0;
  for (int i = 0; i < committed; ++i) {
    if (ctx.stats != nullptr) *ctx.stats += results[i].stats;
    sum_us += results[i].us;
    max_us = std::max(max_us, results[i].us);
  }
  if (ctx.stats != nullptr) {
    ctx.stats->refine_tasks += committed;
    ctx.stats->refine_task_us += sum_us;
    // List-scheduling makespan lower bound at this lane count: the section
    // cannot finish faster than its longest task, nor faster than perfect
    // division of the total. Summed across sections this yields a sound
    // "parallel time" even on a 1-core CI box, where wall clock cannot
    // show the speedup.
    ctx.stats->refine_critical_us +=
        std::max(max_us, (sum_us + width - 1) / width);
  }
  return s >= 0;
}

// The refinement step (Section 4.2): candidate verification over a computed
// band, appending its counters to result->stats and filling result->ids.
void Refine(const Rsa::Options& options, const Dataset& data,
            const RSkybandResult& band, const ConvexRegion& r, int k,
            Utk1Result* result) {
  UTK_SPAN_VAL("rsa.refine", static_cast<int64_t>(band.ids.size()));
  RDominanceGraph g = RDominanceGraph::Build(band);
  const int n = g.size();

  enum class State : uint8_t { kUnknown, kInResult, kDisqualified };
  std::vector<State> state(n, State::kUnknown);

  // Process candidates in descending r-dominance-count order; descendants
  // (strictly larger counts) are settled before their ancestors.
  std::vector<int> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<int> init_count(n);
  for (int i = 0; i < n; ++i) init_count[i] = g.Ancestors(i).Count();
  std::stable_sort(order.begin(), order.end(), [&](int a, int b) {
    return init_count[a] > init_count[b];
  });

  auto interior = FindInteriorPoint(r.constraints());
  assert(interior.has_value() && interior->radius > 0);

  // Gathered SoA mirror of the band: row i = data[band.ids[i]]. Every
  // verification scores these few hundred rows over and over; the batched
  // kernels sweep them contiguously.
  const ColumnStore band_cols(data, band.ids);
  std::vector<Scalar> scratch(band.ids.size());

  for (int p : order) {
    if (state[p] != State::kUnknown) continue;
    UTK_SPAN("rsa.candidate");
    VerifyContext ctx{data,   band, band_cols, &scratch, g, options, p,
                      MakeScore(data[band.ids[p]]), &result->stats};
    // Ancestors are ignored and their count is absorbed into the quota.
    Bitset ignored = g.Ancestors(p);
    const int quota = k - g.Ancestors(p).CountAnd(g.Active());
    assert(quota >= 1);
    if (Verify(ctx, r.constraints(), interior->x, interior->radius, quota,
               ignored, options.refine_threads)) {
      state[p] = State::kInResult;
      g.Ancestors(p).ForEach([&](int a) { state[a] = State::kInResult; });
    } else {
      state[p] = State::kDisqualified;
      g.Remove(p);
    }
  }

  for (int i = 0; i < n; ++i)
    if (state[i] == State::kInResult) result->ids.push_back(band.ids[i]);
  std::sort(result->ids.begin(), result->ids.end());
}

}  // namespace

Utk1Result Rsa::Run(const Dataset& data, const RTree& tree,
                    const ConvexRegion& r, int k,
                    const ColumnStore* cols) const {
  Utk1Result result;
  Timer timer;
  RSkybandResult band =
      ComputeRSkyband(data, tree, r, k, &result.stats, cols);
  Refine(options_, data, band, r, k, &result);
  result.stats.elapsed_ms = timer.ElapsedMs();
  return result;
}

Utk1Result Rsa::RunFiltered(const Dataset& data, const RSkybandResult& band,
                            const ConvexRegion& r, int k) const {
  Utk1Result result;
  Timer timer;
  result.stats.candidates = static_cast<int64_t>(band.ids.size());
  Refine(options_, data, band, r, k, &result);
  result.stats.elapsed_ms = timer.ElapsedMs();
  return result;
}

}  // namespace utk
