// Constrained kSPR component (Section 3.3), re-implemented in the style of
// the LP-CTA cell-tree algorithm of Tang et al. [45].
//
// A monochromatic reverse top-k query at record p, restricted to region R:
// compute the sub-regions of R where p ranks among the top-k. Each
// competitor q maps to the half-space S(q) >= S(p); in the arrangement of
// these half-spaces over R, cells covered by fewer than k of them form the
// answer. Cells reaching count k are frozen (their geometry no longer
// matters), which is the pruning that makes the baseline tractable at all.
//
// The UTK baselines (SK and ON) call this once per filtered candidate; this
// per-candidate single-arrangement design — as opposed to RSA/JAA's shared
// graph and local disposable arrangements — is precisely what the paper's
// experiments show to be 1-2 orders of magnitude slower.
#ifndef UTK_CORE_KSPR_H_
#define UTK_CORE_KSPR_H_

#include <vector>

#include "arrangement/arrangement.h"
#include "common/stats.h"
#include "common/types.h"
#include "geometry/region.h"

namespace utk {

struct KsprResult {
  bool qualifies = false;          ///< p in the top-k somewhere in R
  std::vector<Cell> topk_cells;    ///< cells of R where p is in the top-k
};

/// Runs constrained kSPR for record `p` against `competitors` (record ids
/// into `data`). If `early_exit` is true (UTK1 mode), stops as soon as
/// qualification is decided and leaves `topk_cells` empty; otherwise (UTK2
/// mode) returns all qualifying cells.
KsprResult Kspr(const Dataset& data, int32_t p,
                const std::vector<int32_t>& competitors,
                const ConvexRegion& r, int k, bool early_exit,
                QueryStats* stats = nullptr);

}  // namespace utk

#endif  // UTK_CORE_KSPR_H_
