#include "core/baseline.h"

#include <algorithm>

#include "obs/trace.h"
#include "skyline/onion.h"
#include "skyline/skyband.h"

namespace utk {

int64_t BaselineUtk2Result::TotalCells() const {
  int64_t n = 0;
  for (const auto& r : records) n += static_cast<int64_t>(r.cells.size());
  return n;
}

std::vector<int32_t> BaselineUtk2Result::AllRecords() const {
  std::vector<int32_t> out;
  for (const auto& r : records)
    if (!r.cells.empty()) out.push_back(r.id);
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<int32_t> Baseline::FilterCandidates(const Dataset& data,
                                                const RTree& tree, int k,
                                                QueryStats* stats,
                                                const ColumnStore* cols) const {
  std::vector<int32_t> cands = filter_ == BaselineFilter::kSkyband
                                   ? KSkyband(data, tree, k, stats, cols)
                                   : OnionCandidates(data, tree, k, stats);
  std::sort(cands.begin(), cands.end());
  if (stats != nullptr) stats->candidates = static_cast<int64_t>(cands.size());
  return cands;
}

Utk1Result Baseline::RunUtk1(const Dataset& data, const RTree& tree,
                             const ConvexRegion& r, int k,
                             const ColumnStore* cols) const {
  Utk1Result result;
  Timer timer;
  std::vector<int32_t> cands =
      FilterCandidates(data, tree, k, &result.stats, cols);
  {
    UTK_SPAN_VAL("baseline.refine", static_cast<int64_t>(cands.size()));
    for (int32_t p : cands) {
      KsprResult kr = Kspr(data, p, cands, r, k, /*early_exit=*/true,
                           &result.stats);
      if (kr.qualifies) result.ids.push_back(p);
    }
  }
  std::sort(result.ids.begin(), result.ids.end());
  result.stats.elapsed_ms = timer.ElapsedMs();
  return result;
}

BaselineUtk2Result Baseline::RunUtk2(const Dataset& data, const RTree& tree,
                                     const ConvexRegion& r, int k,
                                     const ColumnStore* cols) const {
  BaselineUtk2Result result;
  Timer timer;
  std::vector<int32_t> cands =
      FilterCandidates(data, tree, k, &result.stats, cols);
  {
    UTK_SPAN_VAL("baseline.refine", static_cast<int64_t>(cands.size()));
    for (int32_t p : cands) {
      KsprResult kr = Kspr(data, p, cands, r, k, /*early_exit=*/false,
                           &result.stats);
      if (!kr.topk_cells.empty()) {
        result.records.push_back({p, std::move(kr.topk_cells)});
      }
    }
  }
  result.stats.elapsed_ms = timer.ElapsedMs();
  return result;
}

}  // namespace utk
