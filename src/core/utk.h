// Public API types for the UTK query (Section 3.1).
//
// UTK1: the minimal set of records that can appear in the top-k set for some
//       weight vector in region R.
// UTK2: a partitioning of R where each cell carries the exact top-k set that
//       holds everywhere inside it.
#ifndef UTK_CORE_UTK_H_
#define UTK_CORE_UTK_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "geometry/region.h"

namespace utk {

/// UTK1 output: record ids, sorted ascending, plus execution stats.
struct Utk1Result {
  std::vector<int32_t> ids;
  QueryStats stats;
};

/// One cell of the UTK2 partitioning of R.
struct Utk2Cell {
  std::vector<Halfspace> bounds;  ///< H-representation of the cell
  Vec witness;                    ///< an interior point of the cell
  std::vector<int32_t> topk;      ///< record ids of the exact top-k set
};

/// UTK2 output: the common global arrangement (Section 5).
struct Utk2Result {
  std::vector<Utk2Cell> cells;
  QueryStats stats;

  /// Union of the top-k sets over all cells (equals the UTK1 answer).
  std::vector<int32_t> AllRecords() const;
  /// Number of *distinct* top-k sets across the cells (the paper's Fig. 12(d)
  /// metric; adjacent cells produced by different anchors may repeat a set).
  int64_t NumDistinctTopkSets() const;

  /// Sorts cells into the one canonical order every producer emits: by top-k
  /// set, then witness, then constraint count (all lexicographic). Cells of
  /// one result partition R, so witnesses are distinct interior points and
  /// the order is a deterministic function of the partition — recursion
  /// order, tile concatenation seams (src/dist/), and donor clipping
  /// (src/serve/) all wash out. Every Utk2Result handed to a caller must be
  /// canonical; the differential harness asserts it instead of re-sorting.
  void Canonicalize();
  /// True iff the cells are already in canonical order.
  bool IsCanonical() const;
};

}  // namespace utk

#endif  // UTK_CORE_UTK_H_
