// The drill optimization (Section 4.3).
//
// A drill executes a regular top-k probe at a carefully chosen weight vector
// inside a region/partition: the vector that maximizes the candidate's score
// subject to the region's constraints (a small LP). The probe itself never
// touches the dataset or the R-tree — it runs branch-and-bound over the
// r-dominance graph G, whose arcs give score upper bounds at any w in R.
#ifndef UTK_CORE_DRILL_H_
#define UTK_CORE_DRILL_H_

#include <optional>
#include <vector>

#include "common/bitset.h"
#include "common/stats.h"
#include "geometry/lp.h"
#include "skyline/graph.h"
#include "skyline/rskyband.h"

namespace utk {

/// Weight vector inside the region defined by `cons` that maximizes the
/// affine `objective` (the candidate's score). Returns nullopt if the LP
/// fails (degenerate region); callers then fall back to an interior point.
std::optional<Vec> DrillVector(const AffineScore& objective,
                               const std::vector<Halfspace>& cons,
                               QueryStats* stats = nullptr);

/// Top-k probe at weight vector `w`, evaluated purely on the r-dominance
/// graph via branch-and-bound (max-heap of node scores seeded with the
/// graph's roots; a child is only pushed once its parent pops, because a
/// parent's score upper-bounds its descendants' anywhere in R).
/// Only nodes in `mask` participate. Returns candidate indices, best first.
std::vector<int> GraphTopK(const Dataset& data, const RSkybandResult& band,
                           const RDominanceGraph& g, const Bitset& mask,
                           const Vec& w, int k, QueryStats* stats = nullptr);

}  // namespace utk

#endif  // UTK_CORE_DRILL_H_
