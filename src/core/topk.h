// Plain top-k queries over the dataset (Section 1) and the incremental
// variant used by the Figure 10(b) comparison.
#ifndef UTK_CORE_TOPK_H_
#define UTK_CORE_TOPK_H_

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "exec/column_store.h"
#include "index/rtree.h"

namespace utk {

/// The k highest-scoring record ids for reduced weight vector w, best first.
/// Ties at the boundary are broken by record id for determinism.
std::vector<int32_t> TopK(const Dataset& data, const Vec& w, int k);

/// Index-based top-k: branch-and-bound over the R-tree with a max-heap keyed
/// by the score upper bound of each subtree (its MBB top corner). Visits
/// only the nodes whose bound exceeds the running k-th score — the classic
/// way to answer top-k without scanning the dataset. Same output contract
/// as TopK (best first, id tie-break). `cols`, when non-null, must mirror
/// `data`; popped leaves are then scored through the batched ScoreBatch
/// kernel (bit-identical, see exec/kernels.h). The full-scan alternative is
/// exec/kernels.h TopKScan (the fused score + bounded-heap kernel).
std::vector<int32_t> TopKRTree(const Dataset& data, const RTree& tree,
                               const Vec& w, int k,
                               QueryStats* stats = nullptr,
                               const ColumnStore* cols = nullptr);

/// Incremental top-k: ranks the whole dataset for w (best first) so callers
/// can probe ever-larger prefixes, as in the "can a larger k simulate UTK1?"
/// experiment (Figure 10(b)).
class IncrementalTopK {
 public:
  IncrementalTopK(const Dataset& data, const Vec& w);

  /// The i-th best record id (0-based).
  int32_t Get(int i) const { return order_[i]; }
  int size() const { return static_cast<int>(order_.size()); }

  /// Smallest prefix length whose record set covers `targets`.
  int PrefixCovering(const std::vector<int32_t>& targets) const;

 private:
  std::vector<int32_t> order_;
};

}  // namespace utk

#endif  // UTK_CORE_TOPK_H_
