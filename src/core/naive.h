// Naive exact UTK oracles, used only for testing and for calibrating the
// fast algorithms. Deliberately implemented with different machinery than
// RSA/JAA/kSPR: plain depth-first half-space enumeration with LP feasibility,
// no arrangement index, no graph, no pruning beyond count >= k.
#ifndef UTK_CORE_NAIVE_H_
#define UTK_CORE_NAIVE_H_

#include <vector>

#include "core/utk.h"

namespace utk {

/// Exact UTK1 membership of record `p`: does some w in R give p a rank <= k?
/// Considers every other record in `data` as a competitor.
bool NaiveUtk1Member(const Dataset& data, int32_t p, const ConvexRegion& r,
                     int k);

/// Exact UTK1 by testing every record. O(n * 2^n) worst case; for tiny
/// datasets only.
std::vector<int32_t> NaiveUtk1(const Dataset& data, const ConvexRegion& r,
                               int k);

/// Exact top-k at sampled weight vectors: a completeness probe for UTK2.
/// Returns `samples` weight vectors inside R (rejection sampling from R's
/// bounding box) paired with their exact top-k sets.
std::vector<std::pair<Vec, std::vector<int32_t>>> SampleTopkSets(
    const Dataset& data, const ConvexRegion& r, int k, int samples,
    uint64_t seed);

}  // namespace utk

#endif  // UTK_CORE_NAIVE_H_
