#include "core/topk.h"

#include <algorithm>
#include <numeric>
#include <queue>
#include <unordered_set>

#include "exec/kernels.h"
#include "geometry/linear.h"

namespace utk {

std::vector<int32_t> TopK(const Dataset& data, const Vec& w, int k) {
  std::vector<std::pair<Scalar, int32_t>> scored;
  scored.reserve(data.size());
  for (const Record& p : data) scored.emplace_back(Score(p, w), p.id);
  const int kk = std::min<int>(k, static_cast<int>(scored.size()));
  std::partial_sort(scored.begin(), scored.begin() + kk, scored.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<int32_t> out;
  out.reserve(kk);
  for (int i = 0; i < kk; ++i) out.push_back(scored[i].second);
  return out;
}

std::vector<int32_t> TopKRTree(const Dataset& data, const RTree& tree,
                               const Vec& w, int k, QueryStats* stats,
                               const ColumnStore* cols) {
  std::vector<int32_t> out;
  if (tree.empty() || k <= 0) return out;
  const bool soa = cols != nullptr && !cols->empty();
  std::vector<Scalar> leaf_scores;

  struct Entry {
    Scalar key;
    bool is_record;
    int32_t id;
    bool operator<(const Entry& o) const {
      if (key != o.key) return key < o.key;
      // On key ties, expand nodes before emitting records so every
      // tied-score record is in the heap before any one is reported, then
      // report smaller ids first (matches TopK's deterministic tie-break).
      if (is_record != o.is_record) return is_record > o.is_record;
      return id > o.id;
    }
  };
  auto corner_score = [&](const Vec& corner) {
    Record tmp;
    tmp.attrs = corner;
    return Score(tmp, w);
  };

  std::priority_queue<Entry> heap;
  heap.push({corner_score(tree.node(tree.root()).mbb.TopCorner()), false,
             tree.root()});
  while (!heap.empty() && static_cast<int>(out.size()) < k) {
    Entry e = heap.top();
    heap.pop();
    if (stats != nullptr) ++stats->heap_pops;
    if (e.is_record) {
      out.push_back(e.id);
      continue;
    }
    const RTreeNode& node = tree.node(e.id);
    if (node.is_leaf) {
      if (soa) {
        leaf_scores.resize(node.record_ids.size());
        ScoreBatch(*cols, w, node.record_ids, leaf_scores.data());
        for (size_t i = 0; i < node.record_ids.size(); ++i)
          heap.push({leaf_scores[i], true, node.record_ids[i]});
      } else {
        for (int32_t rid : node.record_ids)
          heap.push({Score(data[rid], w), true, rid});
      }
    } else {
      for (int32_t child : node.entries)
        heap.push({corner_score(tree.node(child).mbb.TopCorner()), false,
                   child});
    }
  }
  return out;
}

IncrementalTopK::IncrementalTopK(const Dataset& data, const Vec& w) {
  std::vector<std::pair<Scalar, int32_t>> scored;
  scored.reserve(data.size());
  for (const Record& p : data) scored.emplace_back(Score(p, w), p.id);
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.first != b.first) return a.first > b.first;
    return a.second < b.second;
  });
  order_.reserve(scored.size());
  for (const auto& [s, id] : scored) order_.push_back(id);
}

int IncrementalTopK::PrefixCovering(const std::vector<int32_t>& targets) const {
  std::unordered_set<int32_t> want(targets.begin(), targets.end());
  int covered = 0;
  for (int i = 0; i < static_cast<int>(order_.size()); ++i) {
    if (want.count(order_[i]) != 0 &&
        ++covered == static_cast<int>(want.size())) {
      return i + 1;
    }
  }
  return want.empty() ? 0 : -1;
}

}  // namespace utk
