// JAA — the Joint Arrangement Algorithm for UTK2 (Section 5).
//
// JAA shares RSA's filtering step (r-skyband + r-dominance graph) but builds
// one *common global arrangement* of R. An anchor record partitions the
// current region via the verification-like process of Section 4.2 (drill and
// early termination disabled); each partition is classified as
//   equal-to      anchor ranks exactly `need`  -> top-k known, finalized
//   less-than     anchor ranks above `need`    -> recurse with a longer
//                                                 known top prefix
//   greater-than  anchor ranks below `need`    -> recurse excluding the
//                                                 anchor and its descendants
// The anchor choosing strategy (Section 5.1) picks the `need`-th best record
// at a drill vector inside the partition, guaranteeing at least one equal-to
// sub-partition per anchor.
#ifndef UTK_CORE_JAA_H_
#define UTK_CORE_JAA_H_

#include "core/utk.h"
#include "index/rtree.h"
#include "skyline/rskyband.h"

namespace utk {

class Jaa {
 public:
  struct Options {
    bool use_lemma1 = true;  ///< Lemma-1 competitor pruning
    /// Maximum half-spaces inserted per local arrangement; leftover
    /// competitors are handled by deeper recursion (see Rsa::Options).
    int wave_cap = 8;
    /// Cells of the TOP-level partition refined concurrently (recursive
    /// levels stay serial). <= 1 keeps the serial walk. > 1 runs each
    /// top-level cell's whole sub-recursion as a pool task with private
    /// output/stats/scratch, then merges results in cell order — JAA has
    /// no early exit, every cell always runs, so the emitted cells and
    /// every logical QueryStats counter are bitwise identical to the
    /// serial walk (only the refine_* timing fields and wall time differ).
    int refine_threads = 0;
  };

  Jaa() = default;
  explicit Jaa(Options options) : options_(options) {}

  /// Answers UTK2 for `data` (indexed by `tree`), parameter `k`, region `r`.
  /// `cols`, when non-null, must mirror `data`; the filtering step then
  /// runs its columnar fast paths (see Rsa::Run).
  Utk2Result Run(const Dataset& data, const RTree& tree, const ConvexRegion& r,
                 int k, const ColumnStore* cols = nullptr) const;

  /// Refinement only: builds the common global arrangement from an
  /// already-computed filter output (see Rsa::RunFiltered for the band
  /// contract). Used by the partitioned engine (src/dist/) to refine a
  /// pooled band produced by per-shard filtering.
  Utk2Result RunFiltered(const Dataset& data, const RSkybandResult& band,
                         const ConvexRegion& r, int k) const;

 private:
  Options options_ = {};
};

}  // namespace utk

#endif  // UTK_CORE_JAA_H_
