// RSA — the r-Skyband Algorithm for UTK1 (Section 4).
//
// Filtering: compute the r-skyband and the r-dominance graph G (Section 4.1).
// Refinement: verify candidates one by one in descending r-dominance-count
// order; a verified candidate confirms all its ancestors in G for free, and
// a disqualified candidate is removed from G. Verification of a candidate
// recursively partitions the region with the half-spaces of the strongest
// (r-dominance count 0) competitors, confirms promising partitions via
// Lemma 1, and short-circuits with the drill optimization (Section 4.3).
#ifndef UTK_CORE_RSA_H_
#define UTK_CORE_RSA_H_

#include "core/utk.h"
#include "index/rtree.h"
#include "skyline/graph.h"

namespace utk {

class Rsa {
 public:
  struct Options {
    bool use_drill = true;      ///< drill optimization (Section 4.3)
    bool use_lemma1 = true;     ///< Lemma-1 competitor pruning
    /// Maximum half-spaces inserted per local arrangement (the paper's
    /// "small, carefully selected subset" of competitors, Section 4.2).
    /// Leftover strongest competitors are handled by the recursion, which
    /// only descends into promising partitions. 0 = insert all count-0
    /// competitors at once.
    int wave_cap = 8;
    /// Promising partitions evaluated concurrently at the TOP level of each
    /// candidate's verification (recursive levels stay serial — the top
    /// level owns nearly all the fan-out). <= 1 keeps the serial walk.
    /// > 1 evaluates cells speculatively on the shared pool
    /// (common/pool.h) and commits outcomes in cell order up to the first
    /// success, so result ids, cell outcomes, and every logical QueryStats
    /// counter are bitwise identical to the serial walk; only the
    /// refine_tasks/refine_task_us/refine_critical_us timing fields (and
    /// wall time) differ.
    int refine_threads = 0;
  };

  Rsa() = default;
  explicit Rsa(Options options) : options_(options) {}

  /// Answers UTK1 for `data` (indexed by `tree`), parameter `k`, region `r`.
  /// `cols`, when non-null, must mirror `data` (exec/column_store.h); the
  /// filtering step then runs its columnar fast paths. Refinement always
  /// gathers its own band-local ColumnStore — the band is scored thousands
  /// of times, so the gather pays for itself immediately.
  Utk1Result Run(const Dataset& data, const RTree& tree,
                 const ConvexRegion& r, int k,
                 const ColumnStore* cols = nullptr) const;

  /// Refinement only: answers UTK1 from an already-computed filter output.
  /// `band` must cover every top-k set over `r` and carry the r-dominance
  /// arcs within itself — either ComputeRSkyband's output or a pooled band
  /// from ComputeRSkybandFromPool (the partitioned engine's sharded filter,
  /// src/dist/). `stats.candidates` reports the band size; the filter's own
  /// cost is whoever produced the band's to account.
  Utk1Result RunFiltered(const Dataset& data, const RSkybandResult& band,
                         const ConvexRegion& r, int k) const;

 private:
  Options options_ = {};
};

}  // namespace utk

#endif  // UTK_CORE_RSA_H_
