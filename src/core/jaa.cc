#include "core/jaa.h"

#include <algorithm>
#include <cassert>

#include "arrangement/arrangement.h"
#include "common/parallel.h"
#include "core/drill.h"
#include "exec/kernels.h"
#include "geometry/linear.h"
#include "obs/trace.h"
#include "skyline/graph.h"
#include "skyline/rskyband.h"

namespace utk {

namespace {

struct JaaContext {
  const Dataset& data;
  const RSkybandResult& band;
  const ColumnStore& band_cols;  // gathered SoA mirror: row i = band.ids[i]
  std::vector<Scalar>* scratch;  // |band| score buffer for batched kernels
  const RDominanceGraph& g;
  const Jaa::Options& options;
  int k;
  Utk2Result* out;
  QueryStats* stats;
};

// Geometric description of the (sub-)region currently being partitioned.
struct Zone {
  const std::vector<Halfspace>& bounds;
  const Vec& interior;
  Scalar radius;
};

// `lanes` > 1 refines the cells of the NEXT PartitionRec level concurrently
// (Refine passes options.refine_threads for the top-level call; every
// recursive call passes 1).
void Solve(const JaaContext& ctx, const Zone& zone, const Bitset& prefix,
           int need, const Bitset& excluded, int lanes);

// Emits a finalized equal-to cell: top-k = prefix  U  above  U  {anchor}.
void Finalize(const JaaContext& ctx, const Zone& zone, const Bitset& prefix,
              const Bitset& above, int anchor) {
  Utk2Cell cell;
  cell.bounds = zone.bounds;
  cell.witness = zone.interior;
  prefix.ForEach([&](int i) { cell.topk.push_back(ctx.band.ids[i]); });
  above.ForEach([&](int i) { cell.topk.push_back(ctx.band.ids[i]); });
  cell.topk.push_back(ctx.band.ids[anchor]);
  std::sort(cell.topk.begin(), cell.topk.end());
  ctx.out->cells.push_back(std::move(cell));
}

// The verification-like process (Algorithm 4) for anchor `p` in `zone`.
//   prefix   records known to be the top-|prefix| everywhere in `zone`
//   need     k - |prefix|  (anchor aims for rank `need` among non-prefix)
//   excluded records proven unable to enter the top-k anywhere in `zone`
//   above    non-prefix records known to score above p everywhere in `zone`
//   irrelevant  non-prefix records known to score below p everywhere in
//               `zone` (inserted-not-covering and Lemma-1 disregarded)
void PartitionRec(const JaaContext& ctx, int p, const Zone& zone,
                  const Bitset& prefix, int need, const Bitset& excluded,
                  const Bitset& above, const Bitset& irrelevant, int lanes);

// One cell of a PartitionRec level: greater-than shortcut, Lemma-1
// classification, then finalize / recurse. All sub-recursion stays serial
// (lanes=1); the parallel path hands each task a private JaaContext (own
// out/stats/scratch) so tasks share only read-only state.
void PartitionCell(const JaaContext& ctx, int p, const Cell& cell,
                   const Bitset& prefix, int need, const Bitset& excluded,
                   const Bitset& above, const Bitset& irrelevant,
                   int rank_known, const Bitset& inserted,
                   const Bitset& remaining) {
  Bitset covering(ctx.g.size());
  for (int id : cell.covering) covering.Set(id);
  Bitset not_covering = inserted;
  not_covering.SubtractWith(covering);

  const int rank = rank_known + cell.Count();  // rank with inserted only
  Zone sub{cell.bounds, cell.interior, cell.radius};

  if (rank > need) {
    // Greater-than partition: p (and its descendants) cannot be in the
    // top-k here; the rank needs no Lemma-1 confirmation (line 12).
    Bitset next_excluded = excluded;
    next_excluded.Set(p);
    next_excluded.UnionWith(ctx.g.Descendants(p));
    Solve(ctx, sub, prefix, need, next_excluded, /*lanes=*/1);
    return;
  }

  // Classify via Lemma 1: which remaining competitors may still beat p
  // inside this cell?
  bool confirmed = true;
  Bitset disregarded(ctx.g.size());
  remaining.ForEach([&](int q) {
    if (ctx.options.use_lemma1 &&
        ctx.g.Ancestors(q).Intersects(not_covering)) {
      disregarded.Set(q);
    } else {
      confirmed = false;
    }
  });

  Bitset cell_above = above;
  cell_above.UnionWith(covering);

  if (confirmed) {
    if (rank == need) {
      Finalize(ctx, sub, prefix, cell_above, p);
    } else {  // rank < need: less-than partition
      Bitset next_prefix = prefix;
      next_prefix.UnionWith(cell_above);
      next_prefix.Set(p);
      Solve(ctx, sub, next_prefix, need - rank, excluded, /*lanes=*/1);
    }
  } else {
    // Unclassifiable: refine this cell with the next wave of competitors.
    Bitset cell_irrelevant = irrelevant;
    cell_irrelevant.UnionWith(not_covering);
    cell_irrelevant.UnionWith(disregarded);
    PartitionRec(ctx, p, sub, prefix, need, excluded, cell_above,
                 cell_irrelevant, /*lanes=*/1);
  }
}

void PartitionRec(const JaaContext& ctx, int p, const Zone& zone,
                  const Bitset& prefix, int need, const Bitset& excluded,
                  const Bitset& above, const Bitset& irrelevant, int lanes) {
  if (ctx.stats != nullptr) ++ctx.stats->verify_calls;

  // Competitors that can still affect p's rank in this zone.
  Bitset competitors = ctx.g.Active();
  competitors.SubtractWith(prefix);
  competitors.SubtractWith(excluded);
  competitors.SubtractWith(above);
  competitors.SubtractWith(irrelevant);
  competitors.SubtractWith(ctx.g.Descendants(p));  // never outscore p
  competitors.Reset(p);

  const int rank_known = above.Count() + 1;  // p's rank if no competitor wins

  if (competitors.Count() == 0) {
    // Rank of p is fully determined everywhere in the zone.
    if (rank_known == need) {
      Finalize(ctx, zone, prefix, above, p);
    } else if (rank_known < need) {
      Bitset next_prefix = prefix;
      next_prefix.UnionWith(above);
      next_prefix.Set(p);
      Solve(ctx, zone, next_prefix, need - rank_known, excluded, /*lanes=*/1);
    } else {
      Bitset next_excluded = excluded;
      next_excluded.Set(p);
      next_excluded.UnionWith(ctx.g.Descendants(p));
      Solve(ctx, zone, prefix, need, next_excluded, /*lanes=*/1);
    }
    return;
  }

  // Local arrangement over the zone with the strongest competitors (local
  // r-dominance count 0), wave-capped as in RSA. Once a cell's count pushes
  // the anchor's rank beyond `need` it is greater-than regardless of any
  // further half-space, so it freezes (no more refinement by this anchor).
  CellArrangement arr(zone.bounds, zone.interior, zone.radius, ctx.stats);
  arr.set_freeze_threshold(std::max(1, need - rank_known + 1));
  std::vector<int> wave;
  competitors.ForEach([&](int i) {
    if (!ctx.g.Ancestors(i).Intersects(competitors)) wave.push_back(i);
  });
  if (ctx.options.wave_cap > 0 &&
      static_cast<int>(wave.size()) > ctx.options.wave_cap) {
    // Batched scores at the zone interior; the sort compares flat scalars.
    ScoreAll(ctx.band_cols, zone.interior, ctx.scratch->data());
    const std::vector<Scalar>& sc = *ctx.scratch;
    std::partial_sort(
        wave.begin(), wave.begin() + ctx.options.wave_cap, wave.end(),
        [&](int a, int b) { return sc[a] > sc[b]; });
    wave.resize(ctx.options.wave_cap);
  }
  Bitset inserted(ctx.g.size());
  {
    UTK_SPAN_VAL("arrangement.build", static_cast<int64_t>(wave.size()));
    for (int i : wave) {
      arr.Insert(i, BetterOrEqual(ctx.data[ctx.band.ids[i]],
                                  ctx.data[ctx.band.ids[p]]));
      inserted.Set(i);
    }
  }
  assert(inserted.Count() > 0);

  Bitset remaining = competitors;
  remaining.SubtractWith(inserted);

  const int tasks = static_cast<int>(arr.cells().size());
  if (lanes <= 1 || tasks <= 1) {
    for (const Cell& cell : arr.cells()) {
      PartitionCell(ctx, p, cell, prefix, need, excluded, above, irrelevant,
                    rank_known, inserted, remaining);
    }
    return;
  }

  // Parallel cell walk. Unlike RSA there is no early exit — every cell's
  // sub-recursion always runs — so each task gets a private output/stats/
  // scratch sink and the merge below replays the serial emission order
  // exactly: cells of task i land before cells of task i+1, counters sum
  // to the serial totals, gauges max the same way.
  struct CellTask {
    Utk2Result out;
    QueryStats stats;
    int64_t us = 0;
  };
  std::vector<CellTask> results(tasks);
  const int width = std::min(lanes, tasks);
  ParallelFor(tasks, width, [&](int idx) {
    Timer t;
    CellTask& res = results[idx];
    std::vector<Scalar> local_scratch(ctx.scratch->size());
    JaaContext local = ctx;
    local.scratch = &local_scratch;
    local.out = &res.out;
    local.stats = &res.stats;
    PartitionCell(local, p, arr.cells()[idx], prefix, need, excluded, above,
                  irrelevant, rank_known, inserted, remaining);
    res.us = static_cast<int64_t>(t.ElapsedMs() * 1000.0);
  });

  int64_t sum_us = 0, max_us = 0;
  for (CellTask& res : results) {
    for (Utk2Cell& cell : res.out.cells)
      ctx.out->cells.push_back(std::move(cell));
    if (ctx.stats != nullptr) *ctx.stats += res.stats;
    sum_us += res.us;
    max_us = std::max(max_us, res.us);
  }
  if (ctx.stats != nullptr) {
    ctx.stats->refine_tasks += tasks;
    ctx.stats->refine_task_us += sum_us;
    // List-scheduling makespan lower bound at this lane count (see rsa.cc).
    ctx.stats->refine_critical_us +=
        std::max(max_us, (sum_us + width - 1) / width);
  }
}

// Chooses an anchor for the zone (Section 5.1) and runs the
// verification-like process for it. `prefix` are the known top records,
// `need` > 0 the slots left, `excluded` records that cannot fill them.
void Solve(const JaaContext& ctx, const Zone& zone, const Bitset& prefix,
           int need, const Bitset& excluded, int lanes) {
  assert(need > 0);
  Bitset pool = ctx.g.Active();
  pool.SubtractWith(prefix);
  pool.SubtractWith(excluded);

  const int pool_size = pool.Count();
  if (pool_size == 0) {
    // Fewer records than k: the prefix is the (short) exact top set.
    Utk2Cell cell;
    cell.bounds = zone.bounds;
    cell.witness = zone.interior;
    prefix.ForEach([&](int i) { cell.topk.push_back(ctx.band.ids[i]); });
    std::sort(cell.topk.begin(), cell.topk.end());
    ctx.out->cells.push_back(std::move(cell));
    return;
  }

  // Anchor strategy (Section 5.1): the need-th best pool record at a weight
  // vector inside the zone; for the initial call this is R's pivot.
  std::vector<int> probe = GraphTopK(ctx.data, ctx.band, ctx.g, pool,
                                     zone.interior, std::min(need, pool_size),
                                     ctx.stats);
  const int anchor = probe.back();

  // The anchor's ancestors within the pool score above it everywhere.
  Bitset above = ctx.g.Ancestors(anchor);
  above.IntersectWith(pool);

  PartitionRec(ctx, anchor, zone, prefix, need, excluded, above,
               Bitset(ctx.g.size()), lanes);
}

// The refinement step (Section 5): the anchor recursion over a computed
// band, appending its counters to result->stats and emitting cells.
void Refine(const Jaa::Options& options, const Dataset& data,
            const RSkybandResult& band, const ConvexRegion& r, int k,
            Utk2Result* result) {
  UTK_SPAN_VAL("jaa.refine", static_cast<int64_t>(band.ids.size()));
  RDominanceGraph g = RDominanceGraph::Build(band);

  auto interior = FindInteriorPoint(r.constraints());
  assert(interior.has_value() && interior->radius > 0);

  // Gathered SoA mirror of the band (see rsa.cc Refine).
  const ColumnStore band_cols(data, band.ids);
  std::vector<Scalar> scratch(band.ids.size());

  JaaContext ctx{data,    band, band_cols, &scratch, g,
                 options, k,    result,    &result->stats};
  Zone zone{r.constraints(), interior->x, interior->radius};
  Solve(ctx, zone, Bitset(g.size()), k, Bitset(g.size()),
        options.refine_threads);
}

}  // namespace

Utk2Result Jaa::Run(const Dataset& data, const RTree& tree,
                    const ConvexRegion& r, int k,
                    const ColumnStore* cols) const {
  Utk2Result result;
  Timer timer;
  RSkybandResult band =
      ComputeRSkyband(data, tree, r, k, &result.stats, cols);
  Refine(options_, data, band, r, k, &result);
  result.Canonicalize();
  result.stats.elapsed_ms = timer.ElapsedMs();
  return result;
}

Utk2Result Jaa::RunFiltered(const Dataset& data, const RSkybandResult& band,
                            const ConvexRegion& r, int k) const {
  Utk2Result result;
  Timer timer;
  result.stats.candidates = static_cast<int64_t>(band.ids.size());
  Refine(options_, data, band, r, k, &result);
  result.Canonicalize();
  result.stats.elapsed_ms = timer.ElapsedMs();
  return result;
}

}  // namespace utk
