// Input validation for the public UTK entry points.
//
// The algorithms themselves assume well-formed inputs (ids equal to indices,
// consistent dimensionality, a query region with interior); these helpers
// let applications check user-supplied data up front and report actionable
// errors instead of tripping asserts deep inside the geometry.
#ifndef UTK_CORE_VALIDATE_H_
#define UTK_CORE_VALIDATE_H_

#include <optional>
#include <string>

#include "geometry/region.h"

namespace utk {

/// Returns an error description, or nullopt if the dataset is well-formed:
/// non-empty, uniform dimensionality >= 2, ids equal to positions, and all
/// attribute values finite.
std::optional<std::string> ValidateDataset(const Dataset& data);

/// Returns an error description, or nullopt if (data, region, k) form a
/// valid UTK query: valid dataset, k >= 1, region dimensionality d-1, and a
/// region with non-empty interior inside the weight simplex.
std::optional<std::string> ValidateQuery(const Dataset& data,
                                         const ConvexRegion& region, int k);

}  // namespace utk

#endif  // UTK_CORE_VALIDATE_H_
