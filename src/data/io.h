// Dataset I/O: CSV load/save so users can run UTK over their own data and
// persist generated workloads. Format: one record per line, attributes
// comma-separated, optional header line (auto-detected on load); record ids
// are assigned by line order.
//
// Numeric policy: attribute values must be finite. "nan"/"inf" tokens parse
// as numbers but are rejected with a clear diagnostic — the same
// common/serial.h CheckFiniteAttrs rule the storage tier's SegmentWriter
// enforces, so no ingest path can smuggle a NaN into zonemaps or dominance
// tests.
#ifndef UTK_DATA_IO_H_
#define UTK_DATA_IO_H_

#include <iosfwd>
#include <optional>
#include <string>

#include "common/types.h"

namespace utk {

/// Writes the dataset as CSV. `header` (e.g. "svc,cln,loc") is optional.
void SaveCsv(const Dataset& data, std::ostream& os,
             const std::string& header = "");
bool SaveCsvFile(const Dataset& data, const std::string& path,
                 const std::string& header = "");

/// Parses CSV into a dataset. Skips blank lines; a first line containing any
/// non-numeric field is treated as a header. Returns nullopt on malformed
/// input (ragged rows, non-numeric or non-finite data values, no rows),
/// with a line-numbered diagnostic in `error` when provided.
std::optional<Dataset> LoadCsv(std::istream& is, std::string* error = nullptr);
std::optional<Dataset> LoadCsvFile(const std::string& path,
                                   std::string* error = nullptr);

}  // namespace utk

#endif  // UTK_DATA_IO_H_
