// Synthetic stand-ins for the paper's real datasets (Section 7):
// HOTEL (418,843 records, 4D guest ratings), HOUSE (315,265 records, 6D
// household expenditures), and NBA (21,960 records, 8D per-season player
// statistics). The originals are not redistributable; these generators
// reproduce the properties that drive UTK cost — dimensionality, scale, and
// correlation structure — as documented in DESIGN.md §5.
#ifndef UTK_DATA_REALISTIC_H_
#define UTK_DATA_REALISTIC_H_

#include <cstdint>

#include "common/types.h"

namespace utk {

/// 4D hotel ratings (Service, Cleanliness, Location, Value) on a 0-10 scale.
/// Ratings are mildly positively correlated through a latent hotel-quality
/// factor, with per-aspect jitter: good hotels tend to be good at everything,
/// but location is noisier (a great hotel can sit in a dull neighborhood).
Dataset GenerateHotelLike(int n, uint64_t seed);

/// 6D household attribute vectors on a [0, 1] scale. Mixes two correlated
/// blocks (income-driven comfort attributes) with anticorrelated trade-off
/// attributes (price vs. size), giving a skyband larger than HOTEL's at
/// equal cardinality — matching the paper's observation that HOUSE is the
/// harder 6D workload.
Dataset GenerateHouseLike(int n, uint64_t seed);

/// 8D per-game basketball statistics (points, rebounds, assists, steals,
/// blocks, three-pointers, free throws, minutes). A heavy-tailed latent
/// "star" factor scales all stats; a role mix (guard / wing / big) trades
/// rebounds+blocks against assists+threes, producing the anticorrelated
/// pockets that make NBA's 8D skyband disproportionately rich.
Dataset GenerateNbaLike(int n, uint64_t seed);

/// The 7-hotel example of Figure 1 (attributes: Service, Cleanliness,
/// Location). Record ids 0..6 correspond to p1..p7.
Dataset FigureOneHotels();

}  // namespace utk

#endif  // UTK_DATA_REALISTIC_H_
