#include "data/realistic.h"

#include <algorithm>
#include <cmath>

#include "common/rng.h"

namespace utk {

namespace {

Scalar Clamp(Scalar v, Scalar lo, Scalar hi) { return std::clamp(v, lo, hi); }

}  // namespace

Dataset GenerateHotelLike(int n, uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.reserve(n);
  for (int i = 0; i < n; ++i) {
    Scalar quality;
    do {
      quality = rng.Normal(6.5, 1.6);
    } while (quality < 0.0 || quality > 10.0);
    Record rec;
    rec.id = i;
    rec.attrs = {
        Clamp(quality + rng.Normal(0.0, 0.8), 0.0, 10.0),   // Service
        Clamp(quality + rng.Normal(0.0, 0.7), 0.0, 10.0),   // Cleanliness
        Clamp(quality * 0.4 + rng.Uniform(0.0, 6.0), 0.0, 10.0),  // Location
        Clamp(10.0 - quality * 0.5 + rng.Normal(0.0, 1.2), 0.0, 10.0),  // Value
    };
    data.push_back(std::move(rec));
  }
  return data;
}

Dataset GenerateHouseLike(int n, uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.reserve(n);
  for (int i = 0; i < n; ++i) {
    // Latent income percentile with a heavy upper tail.
    const Scalar income = Clamp(std::pow(rng.Uniform(), 1.8), 0.0, 1.0);
    const Scalar tradeoff = rng.Uniform();  // price vs. size trade-off
    Record rec;
    rec.id = i;
    rec.attrs = {
        Clamp(income + rng.Normal(0.0, 0.08), 0.0, 1.0),       // comfort
        Clamp(income + rng.Normal(0.0, 0.10), 0.0, 1.0),       // utilities
        Clamp(income * 0.6 + rng.Uniform(0.0, 0.4), 0.0, 1.0),  // insurance
        Clamp(tradeoff + rng.Normal(0.0, 0.05), 0.0, 1.0),      // size
        Clamp(1.0 - tradeoff + rng.Normal(0.0, 0.05), 0.0, 1.0),  // afford.
        rng.Uniform(),                                          // location
    };
    data.push_back(std::move(rec));
  }
  return data;
}

Dataset GenerateNbaLike(int n, uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.reserve(n);
  for (int i = 0; i < n; ++i) {
    // Heavy-tailed star factor in [0, 1]; most players are role players.
    const Scalar star = Clamp(-0.25 * std::log(rng.Uniform(1e-6, 1.0)), 0.0,
                              1.0);
    // Role mix: 1 => pure guard (assists/threes), 0 => pure big
    // (rebounds/blocks).
    const Scalar role = rng.Uniform();
    const Scalar minutes = Clamp(12.0 + 30.0 * star + rng.Normal(0.0, 4.0),
                                 0.0, 48.0);
    const Scalar load = minutes / 48.0;
    auto stat = [&](Scalar scale, Scalar affinity, Scalar noise) {
      return Clamp(scale * star * load * affinity + rng.Normal(0.0, noise),
                   0.0, scale);
    };
    Record rec;
    rec.id = i;
    rec.attrs = {
        stat(32.0, 0.7 + 0.3 * role, 2.0),          // points
        stat(15.0, 1.1 - 0.8 * role, 1.0),          // rebounds
        stat(11.0, 0.2 + 0.9 * role, 0.8),          // assists
        stat(2.5, 0.5 + 0.5 * role, 0.25),          // steals
        stat(3.0, 1.2 - 1.0 * role, 0.25),          // blocks
        stat(4.0, 0.1 + 1.0 * role, 0.4),           // three-pointers
        stat(9.0, 0.8, 0.8),                        // free throws
        minutes,                                    // minutes
    };
    data.push_back(std::move(rec));
  }
  return data;
}

Dataset FigureOneHotels() {
  const Scalar table[7][3] = {
      {8.3, 9.1, 7.2},  // p1
      {2.4, 9.6, 8.6},  // p2
      {5.4, 1.6, 4.1},  // p3
      {2.6, 6.9, 9.4},  // p4
      {7.3, 3.1, 2.4},  // p5
      {7.9, 6.4, 6.6},  // p6
      {8.6, 7.1, 4.3},  // p7
  };
  Dataset data;
  for (int i = 0; i < 7; ++i) {
    Record rec;
    rec.id = i;
    rec.attrs = {table[i][0], table[i][1], table[i][2]};
    data.push_back(std::move(rec));
  }
  return data;
}

}  // namespace utk
