// Query-workload helpers for experiments (Section 7): random axis-parallel
// hyper-cube regions of side-length sigma, placed uniformly inside the valid
// preference simplex, exactly as the paper's setup prescribes.
#ifndef UTK_DATA_WORKLOAD_H_
#define UTK_DATA_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "common/types.h"
#include "data/generator.h"
#include "geometry/region.h"

namespace utk {

/// A random axis-parallel hyper-cube in the (pref_dim)-dimensional preference
/// domain with side-length `sigma` (fraction of the unit axis), rejected
/// until it lies fully inside the weight simplex so that every vector in it
/// is a valid preference.
ConvexRegion RandomQueryBox(int pref_dim, Scalar sigma, Rng& rng);

/// A batch of `count` random query boxes (the paper averages over 50).
std::vector<ConvexRegion> QueryBatch(int pref_dim, Scalar sigma, int count,
                                     uint64_t seed);

/// A random axis-parallel sub-box of box region `parent` with side lengths
/// `shrink` (in (0, 1]) times the parent's, placed uniformly inside it. The
/// result is always contained in the parent (and so inside the simplex).
ConvexRegion RandomSubBox(const ConvexRegion& parent, Scalar shrink, Rng& rng);

/// How one request of a serving trace relates to the trace's hot set — the
/// cache outcome it is designed to exercise once the hot set is warm.
enum class TraceKind {
  kRepeat,     ///< an exact repeat of a hot region (exact-hit path)
  kSubregion,  ///< a random sub-box of a hot region (containment-hit path)
  kFresh,      ///< an unrelated random region (miss path)
};

/// Knobs for MakeServeTrace. Fractions that do not sum to 1 leave the
/// remainder to kFresh queries.
struct ServeTraceOptions {
  int pref_dim = 2;
  Scalar sigma = 0.1;               ///< side length of the hot regions
  int hot_regions = 4;              ///< size of the hot set
  double repeat_fraction = 0.4;     ///< share of exact repeats
  double subregion_fraction = 0.3;  ///< share of contained sub-boxes
  Scalar shrink = 0.5;              ///< sub-box side relative to its parent
  uint64_t seed = 1;
};

/// An overlapping serving workload (the repeated/contained query streams the
/// serving layer in src/serve is built for): `queries[i]` is classified by
/// `kinds[i]`, and `hot` lists the distinct hot regions that repeats and
/// subregions are drawn from. Deterministic in the options' seed.
struct ServeTrace {
  std::vector<ConvexRegion> hot;
  std::vector<ConvexRegion> queries;
  std::vector<TraceKind> kinds;
};
ServeTrace MakeServeTrace(int count, const ServeTraceOptions& opt);

/// One catalog mutation of an update trace (the live-update workload for
/// src/live/LiveEngine).
enum class UpdateKind { kInsert, kErase };
struct UpdateOp {
  UpdateKind kind = UpdateKind::kInsert;
  /// kInsert: the record to add. record.id == -1 asks the engine to assign
  /// the next id; a non-negative id re-inserts a previously erased record
  /// under its old id.
  Record record;
  /// kErase: the id to remove.
  int32_t id = -1;
};

/// Knobs for MakeUpdateTrace.
struct UpdateTraceOptions {
  double insert_fraction = 0.5;    ///< share of ops that are inserts
  double reinsert_fraction = 0.3;  ///< share of inserts reviving an erased id
  Distribution dist = Distribution::kIndependent;  ///< fresh-record shape
  uint64_t seed = 1;
};

/// A deterministic mixed insert/erase trace of `count` ops against a catalog
/// that starts as `initial` (records ids 0..n-1). Erases always target a
/// currently-live id; fresh inserts carry id -1 and the generator assumes
/// the engine assigns ids sequentially from initial.size() (LiveEngine's
/// contract), so later erases can target them. Reinserts revive an erased
/// record verbatim under its old id. Deterministic in the seed.
std::vector<UpdateOp> MakeUpdateTrace(const Dataset& initial, int count,
                                      const UpdateTraceOptions& opt);

}  // namespace utk

#endif  // UTK_DATA_WORKLOAD_H_
