// Query-workload helpers for experiments (Section 7): random axis-parallel
// hyper-cube regions of side-length sigma, placed uniformly inside the valid
// preference simplex, exactly as the paper's setup prescribes.
#ifndef UTK_DATA_WORKLOAD_H_
#define UTK_DATA_WORKLOAD_H_

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geometry/region.h"

namespace utk {

/// A random axis-parallel hyper-cube in the (pref_dim)-dimensional preference
/// domain with side-length `sigma` (fraction of the unit axis), rejected
/// until it lies fully inside the weight simplex so that every vector in it
/// is a valid preference.
ConvexRegion RandomQueryBox(int pref_dim, Scalar sigma, Rng& rng);

/// A batch of `count` random query boxes (the paper averages over 50).
std::vector<ConvexRegion> QueryBatch(int pref_dim, Scalar sigma, int count,
                                     uint64_t seed);

}  // namespace utk

#endif  // UTK_DATA_WORKLOAD_H_
