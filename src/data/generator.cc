#include "data/generator.h"

#include <algorithm>
#include <cassert>
#include <cctype>
#include <cmath>

#include "common/rng.h"

namespace utk {

namespace {

Scalar Clamp01(Scalar v) { return std::clamp(v, Scalar{0}, Scalar{1}); }

Vec IndependentPoint(int dim, Rng& rng) {
  Vec v(dim);
  for (int i = 0; i < dim; ++i) v[i] = rng.Uniform();
  return v;
}

// Correlated: attributes cluster around a shared "quality" value on the
// diagonal, with small independent jitter.
Vec CorrelatedPoint(int dim, Rng& rng) {
  Vec v(dim);
  Scalar base;
  do {
    base = rng.Normal(0.5, 0.15);
  } while (base < 0.0 || base > 1.0);
  for (int i = 0; i < dim; ++i) v[i] = Clamp01(base + rng.Normal(0.0, 0.05));
  return v;
}

// Anticorrelated: points concentrate around the hyperplane sum(x) = dim/2;
// a record that is good in one dimension is poor in the others.
Vec AnticorrelatedPoint(int dim, Rng& rng) {
  Vec v(dim);
  for (;;) {
    Scalar total;
    do {
      total = rng.Normal(0.5, 0.05) * dim;
    } while (total < 0.0 || total > dim);
    // Split `total` across dimensions with random proportions.
    Vec cuts(dim);
    Scalar sum = 0.0;
    for (int i = 0; i < dim; ++i) {
      cuts[i] = rng.Uniform(0.01, 1.0);
      sum += cuts[i];
    }
    bool ok = true;
    for (int i = 0; i < dim; ++i) {
      v[i] = total * cuts[i] / sum;
      if (v[i] > 1.0) {
        ok = false;
        break;
      }
    }
    if (ok) return v;
  }
}

}  // namespace

Distribution ParseDistribution(const std::string& name) {
  std::string up;
  for (char c : name) up.push_back(static_cast<char>(std::toupper(c)));
  if (up == "IND") return Distribution::kIndependent;
  if (up == "COR") return Distribution::kCorrelated;
  if (up == "ANTI") return Distribution::kAnticorrelated;
  assert(false && "unknown distribution");
  return Distribution::kIndependent;
}

std::string DistributionName(Distribution d) {
  switch (d) {
    case Distribution::kIndependent:
      return "IND";
    case Distribution::kCorrelated:
      return "COR";
    case Distribution::kAnticorrelated:
      return "ANTI";
  }
  return "?";
}

Dataset Generate(Distribution dist, int n, int dim, uint64_t seed) {
  Rng rng(seed);
  Dataset data;
  data.reserve(n);
  for (int i = 0; i < n; ++i) {
    Record rec;
    rec.id = i;
    switch (dist) {
      case Distribution::kIndependent:
        rec.attrs = IndependentPoint(dim, rng);
        break;
      case Distribution::kCorrelated:
        rec.attrs = CorrelatedPoint(dim, rng);
        break;
      case Distribution::kAnticorrelated:
        rec.attrs = AnticorrelatedPoint(dim, rng);
        break;
    }
    data.push_back(std::move(rec));
  }
  return data;
}

}  // namespace utk
