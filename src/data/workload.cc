#include "data/workload.h"

#include <cassert>
#include <numeric>

namespace utk {

ConvexRegion RandomQueryBox(int pref_dim, Scalar sigma, Rng& rng) {
  assert(pref_dim >= 1);
  assert(sigma > 0.0 && sigma * pref_dim < 1.0 &&
         "box too large to fit inside the weight simplex");
  for (int attempt = 0; attempt < 100000; ++attempt) {
    Vec lo(pref_dim), hi(pref_dim);
    Scalar hi_sum = 0.0;
    for (int i = 0; i < pref_dim; ++i) {
      lo[i] = rng.Uniform(0.0, 1.0 - sigma);
      hi[i] = lo[i] + sigma;
      hi_sum += hi[i];
    }
    if (hi_sum <= 1.0) return ConvexRegion::FromBox(lo, hi);
  }
  // Fallback: a box anchored at the simplex centroid always fits when
  // sigma * pref_dim < 1.
  Vec lo(pref_dim), hi(pref_dim);
  for (int i = 0; i < pref_dim; ++i) {
    lo[i] = (1.0 - sigma * pref_dim) / (2.0 * pref_dim);
    hi[i] = lo[i] + sigma;
  }
  return ConvexRegion::FromBox(lo, hi);
}

std::vector<ConvexRegion> QueryBatch(int pref_dim, Scalar sigma, int count,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<ConvexRegion> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i)
    out.push_back(RandomQueryBox(pref_dim, sigma, rng));
  return out;
}

}  // namespace utk
