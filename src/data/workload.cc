#include "data/workload.h"

#include <cassert>
#include <numeric>

namespace utk {

ConvexRegion RandomQueryBox(int pref_dim, Scalar sigma, Rng& rng) {
  assert(pref_dim >= 1);
  assert(sigma > 0.0 && sigma * pref_dim < 1.0 &&
         "box too large to fit inside the weight simplex");
  for (int attempt = 0; attempt < 100000; ++attempt) {
    Vec lo(pref_dim), hi(pref_dim);
    Scalar hi_sum = 0.0;
    for (int i = 0; i < pref_dim; ++i) {
      lo[i] = rng.Uniform(0.0, 1.0 - sigma);
      hi[i] = lo[i] + sigma;
      hi_sum += hi[i];
    }
    if (hi_sum <= 1.0) return ConvexRegion::FromBox(lo, hi);
  }
  // Fallback: a box anchored at the simplex centroid always fits when
  // sigma * pref_dim < 1.
  Vec lo(pref_dim), hi(pref_dim);
  for (int i = 0; i < pref_dim; ++i) {
    lo[i] = (1.0 - sigma * pref_dim) / (2.0 * pref_dim);
    hi[i] = lo[i] + sigma;
  }
  return ConvexRegion::FromBox(lo, hi);
}

std::vector<ConvexRegion> QueryBatch(int pref_dim, Scalar sigma, int count,
                                     uint64_t seed) {
  Rng rng(seed);
  std::vector<ConvexRegion> out;
  out.reserve(count);
  for (int i = 0; i < count; ++i)
    out.push_back(RandomQueryBox(pref_dim, sigma, rng));
  return out;
}

ConvexRegion RandomSubBox(const ConvexRegion& parent, Scalar shrink,
                          Rng& rng) {
  assert(parent.is_box());
  assert(shrink > 0.0 && shrink <= 1.0);
  const int dim = parent.dim();
  Vec lo(dim), hi(dim);
  for (int i = 0; i < dim; ++i) {
    const Scalar side = parent.box_hi()[i] - parent.box_lo()[i];
    lo[i] = parent.box_lo()[i] + rng.Uniform(0.0, 1.0 - shrink) * side;
    hi[i] = lo[i] + shrink * side;
  }
  return ConvexRegion::FromBox(lo, hi);
}

ServeTrace MakeServeTrace(int count, const ServeTraceOptions& opt) {
  assert(opt.hot_regions >= 1);
  ServeTrace trace;
  Rng rng(opt.seed);
  trace.hot.reserve(opt.hot_regions);
  for (int i = 0; i < opt.hot_regions; ++i)
    trace.hot.push_back(RandomQueryBox(opt.pref_dim, opt.sigma, rng));
  trace.queries.reserve(count);
  trace.kinds.reserve(count);
  for (int i = 0; i < count; ++i) {
    const double u = rng.Uniform(0.0, 1.0);
    const int parent = rng.UniformInt(0, opt.hot_regions - 1);
    if (u < opt.repeat_fraction) {
      trace.queries.push_back(trace.hot[parent]);
      trace.kinds.push_back(TraceKind::kRepeat);
    } else if (u < opt.repeat_fraction + opt.subregion_fraction) {
      trace.queries.push_back(
          RandomSubBox(trace.hot[parent], opt.shrink, rng));
      trace.kinds.push_back(TraceKind::kSubregion);
    } else {
      trace.queries.push_back(RandomQueryBox(opt.pref_dim, opt.sigma, rng));
      trace.kinds.push_back(TraceKind::kFresh);
    }
  }
  return trace;
}

std::vector<UpdateOp> MakeUpdateTrace(const Dataset& initial, int count,
                                      const UpdateTraceOptions& opt) {
  Rng rng(opt.seed);
  // Fresh records come from one pre-generated pool so the trace keeps the
  // requested distribution's joint shape (COR/ANTI correlate attributes
  // within a record).
  const int dim = DataDim(initial);
  assert(dim > 0 && "update traces need a non-empty initial catalog");
  Dataset pool = Generate(opt.dist, std::max(count, 1), dim, opt.seed ^ 0x9e3779b97f4a7c15ull);
  size_t next_pool = 0;

  std::vector<int32_t> live(initial.size());
  std::iota(live.begin(), live.end(), 0);
  std::vector<Record> dead;  // erased records, revivable verbatim
  int32_t next_id = static_cast<int32_t>(initial.size());

  std::vector<UpdateOp> ops;
  ops.reserve(count);
  // Remember live attrs so erased records can be revived; initial records
  // are read from `initial`, inserted ones from the ops already emitted.
  std::vector<Record> catalog = initial;

  for (int i = 0; i < count; ++i) {
    const bool insert = live.empty() || rng.Uniform() < opt.insert_fraction;
    UpdateOp op;
    if (insert) {
      op.kind = UpdateKind::kInsert;
      if (!dead.empty() && rng.Uniform() < opt.reinsert_fraction) {
        const int pick = rng.UniformInt(0, static_cast<int>(dead.size()) - 1);
        op.record = dead[pick];
        dead.erase(dead.begin() + pick);
        live.push_back(op.record.id);
      } else {
        op.record = pool[next_pool++ % pool.size()];
        op.record.id = -1;  // engine assigns next_id
        Record assigned = op.record;
        assigned.id = next_id;
        if (next_id >= static_cast<int32_t>(catalog.size()))
          catalog.resize(next_id + 1);
        catalog[next_id] = assigned;
        live.push_back(next_id++);
      }
      if (op.record.id >= 0) catalog[op.record.id] = op.record;
    } else {
      op.kind = UpdateKind::kErase;
      const int pick = rng.UniformInt(0, static_cast<int>(live.size()) - 1);
      op.id = live[pick];
      live.erase(live.begin() + pick);
      dead.push_back(catalog[op.id]);
    }
    ops.push_back(std::move(op));
  }
  return ops;
}

}  // namespace utk
