// Synthetic benchmark data generators (Section 7): the standard Independent
// (IND), Correlated (COR), and Anticorrelated (ANTI) distributions of
// Borzsonyi et al. used throughout the skyline / preference-query
// literature. Attributes are in [0, 1]; larger is better.
#ifndef UTK_DATA_GENERATOR_H_
#define UTK_DATA_GENERATOR_H_

#include <cstdint>
#include <string>

#include "common/types.h"

namespace utk {

enum class Distribution { kIndependent, kCorrelated, kAnticorrelated };

/// Parses "IND" / "COR" / "ANTI" (case-insensitive).
Distribution ParseDistribution(const std::string& name);
std::string DistributionName(Distribution d);

/// Generates `n` records with `dim` attributes from the given distribution.
/// Record ids are 0..n-1.
Dataset Generate(Distribution dist, int n, int dim, uint64_t seed);

}  // namespace utk

#endif  // UTK_DATA_GENERATOR_H_
