#include "data/io.h"

#include <charconv>
#include <fstream>
#include <ostream>
#include <sstream>
#include <vector>

#include "common/serial.h"

namespace utk {

namespace {

std::vector<std::string> SplitCsvLine(const std::string& line) {
  std::vector<std::string> fields;
  std::string cur;
  for (char c : line) {
    if (c == ',') {
      fields.push_back(cur);
      cur.clear();
    } else if (c != '\r') {
      cur.push_back(c);
    }
  }
  fields.push_back(cur);
  return fields;
}

std::optional<Scalar> ParseNumber(const std::string& s) {
  // Trim spaces.
  size_t b = s.find_first_not_of(" \t");
  size_t e = s.find_last_not_of(" \t");
  if (b == std::string::npos) return std::nullopt;
  const std::string t = s.substr(b, e - b + 1);
  try {
    size_t used = 0;
    const Scalar v = std::stod(t, &used);
    if (used != t.size()) return std::nullopt;
    return v;
  } catch (...) {
    return std::nullopt;
  }
}

}  // namespace

void SaveCsv(const Dataset& data, std::ostream& os,
             const std::string& header) {
  if (!header.empty()) os << header << '\n';
  for (const Record& r : data) {
    for (size_t i = 0; i < r.attrs.size(); ++i) {
      if (i > 0) os << ',';
      os << r.attrs[i];
    }
    os << '\n';
  }
}

bool SaveCsvFile(const Dataset& data, const std::string& path,
                 const std::string& header) {
  std::ofstream f(path);
  if (!f.is_open()) return false;
  SaveCsv(data, f, header);
  return f.good();
}

std::optional<Dataset> LoadCsv(std::istream& is, std::string* error) {
  auto fail = [&](int line_no, const std::string& why) -> std::optional<Dataset> {
    if (error != nullptr)
      *error = "line " + std::to_string(line_no) + ": " + why;
    return std::nullopt;
  };
  Dataset data;
  std::string line;
  int expected_width = -1;
  int line_no = 0;
  bool first_content_line = true;
  while (std::getline(is, line)) {
    ++line_no;
    if (line.find_first_not_of(" \t\r") == std::string::npos) continue;
    std::vector<std::string> fields = SplitCsvLine(line);
    Vec attrs;
    attrs.reserve(fields.size());
    bool numeric = true;
    for (const std::string& f : fields) {
      auto v = ParseNumber(f);
      if (!v.has_value()) {
        numeric = false;
        break;
      }
      attrs.push_back(*v);
    }
    if (!numeric) {
      if (first_content_line) {
        first_content_line = false;  // header
        continue;
      }
      return fail(line_no, "non-numeric data row");
    }
    // "nan"/"inf" parse as numbers; the shared ingest policy rejects them
    // here so downstream zonemaps / dominance tests never see them.
    if (auto bad = CheckFiniteAttrs(attrs)) return fail(line_no, *bad);
    first_content_line = false;
    if (expected_width < 0) {
      expected_width = static_cast<int>(attrs.size());
    } else if (static_cast<int>(attrs.size()) != expected_width) {
      return fail(line_no, "ragged row: expected " +
                               std::to_string(expected_width) + " fields, got " +
                               std::to_string(attrs.size()));
    }
    Record r;
    r.id = static_cast<int32_t>(data.size());
    r.attrs = std::move(attrs);
    data.push_back(std::move(r));
  }
  if (data.empty()) {
    if (error != nullptr) *error = "no data rows";
    return std::nullopt;
  }
  return data;
}

std::optional<Dataset> LoadCsvFile(const std::string& path,
                                   std::string* error) {
  std::ifstream f(path);
  if (!f.is_open()) {
    if (error != nullptr) *error = "cannot open " + path;
    return std::nullopt;
  }
  return LoadCsv(f, error);
}

}  // namespace utk
