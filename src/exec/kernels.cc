#include "exec/kernels.h"

#include <cassert>
#include <queue>

#include "exec/simd.h"
#include "exec/simd_kernels.h"
#include "obs/metrics.h"

namespace utk {

void ScoreAll(const ColumnStore& cols, const Vec& w, Scalar* out) {
  ScoreRange(cols, w, 0, cols.size(), out);
}

void ScoreRange(const ColumnStore& cols, const Vec& w, int32_t begin,
                int32_t end, Scalar* out) {
  if (cols.empty() || begin >= end) return;
  const int d = cols.dim();
  assert(static_cast<int>(w.size()) == d - 1);
#if UTK_SIMD_X86
  if (ActiveSimdTier() == SimdTier::kAvx2) {
    simd::Avx2ScoreRange(cols, w, begin, end, out);
    return;
  }
#endif
#if UTK_SIMD_ARM
  if (ActiveSimdTier() == SimdTier::kNeon) {
    simd::NeonScoreRange(cols, w, begin, end, out);
    return;
  }
#endif
  const Scalar* last = cols.col(d - 1);
  const int32_t n = end - begin;
  for (int32_t j = 0; j < n; ++j) out[j] = last[begin + j];
  for (int i = 0; i < d - 1; ++i) {
    const Scalar wi = w[i];
    const Scalar* ci = cols.col(i);
    for (int32_t j = 0; j < n; ++j)
      out[j] += wi * (ci[begin + j] - last[begin + j]);
  }
}

void ScoreBatch(const ColumnStore& cols, const Vec& w,
                std::span<const int32_t> rows, Scalar* out) {
  if (cols.empty() || rows.empty()) return;
  const int d = cols.dim();
  assert(static_cast<int>(w.size()) == d - 1);
#if UTK_SIMD_X86
  if (ActiveSimdTier() == SimdTier::kAvx2) {
    simd::Avx2ScoreBatch(cols, w, rows, out);
    return;
  }
#endif
#if UTK_SIMD_ARM
  if (ActiveSimdTier() == SimdTier::kNeon) {
    simd::NeonScoreBatch(cols, w, rows, out);
    return;
  }
#endif
  const Scalar* last = cols.col(d - 1);
  const size_t n = rows.size();
  for (size_t j = 0; j < n; ++j) out[j] = last[rows[j]];
  for (int i = 0; i < d - 1; ++i) {
    const Scalar wi = w[i];
    const Scalar* ci = cols.col(i);
    for (size_t j = 0; j < n; ++j)
      out[j] += wi * (ci[rows[j]] - last[rows[j]]);
  }
}

std::vector<int32_t> TopKScan(const ColumnStore& cols, const Vec& w, int k) {
  std::vector<int32_t> out;
  const int32_t n = cols.size();
  if (n == 0 || k <= 0) return out;
  static obs::Counter& scans = obs::MetricRegistry::Global().GetCounter(
      "utk_exec_topk_scans_total");
  static obs::Counter& scan_rows = obs::MetricRegistry::Global().GetCounter(
      "utk_exec_topk_scan_rows_total");
  static obs::Counter& zone_skips = obs::MetricRegistry::Global().GetCounter(
      "utk_exec_topk_blocks_skipped_total");
  scans.Add();
  scan_rows.Add(n);

  struct Entry {
    Scalar score;
    int32_t row;
    // priority_queue keeps the *worst* entry on top under this "better
    // than" order, so the heap is a running top-k set.
    bool operator<(const Entry& o) const {
      if (score != o.score) return score > o.score;
      return row < o.row;
    }
  };
  std::priority_queue<Entry> heap;

  const SimdTier tier = ActiveSimdTier();
  (void)tier;
  constexpr int32_t kBlock = 1024;
  static_assert(kBlock == ColumnStore::kZoneRows,
                "zone blocks must align with scan blocks for exact skips");
  Scalar buf[kBlock];
  for (int32_t begin = 0; begin < n; begin += kBlock) {
    const int32_t end = std::min<int32_t>(begin + kBlock, n);
    if (static_cast<int>(heap.size()) == k) {
      // Zonemap block skip. Rows scan in ascending order, so every heap
      // entry has a smaller row than anything in this block and a tied
      // score loses; a block row displaces the heap only with a score
      // strictly above the worst kept one. ZoneUpperBound() bounds every
      // score in the block from above, so ub <= top.score skips exactly
      // the blocks the scalar loop would reject row by row.
      const std::optional<Scalar> ub = cols.ZoneUpperBound(w, begin, end);
      if (ub.has_value() && !(*ub > heap.top().score)) {
        zone_skips.Add();
        continue;
      }
    }
    ScoreRange(cols, w, begin, end, buf);
    const int32_t bn = end - begin;
    int32_t j = 0;
    while (j < bn) {
      if (static_cast<int>(heap.size()) == k) {
        // Vectorized threshold probe: hop over lane groups in which no
        // score strictly beats the current worst kept score — the same
        // strictly-above argument as the block skip, at lane granularity.
#if UTK_SIMD_X86
        if (tier == SimdTier::kAvx2) {
          while (j + 4 <= bn && !simd::Avx2AnyAbove4(buf + j, heap.top().score))
            j += 4;
          if (j >= bn) break;
        }
#endif
#if UTK_SIMD_ARM
        if (tier == SimdTier::kNeon) {
          while (j + 2 <= bn && !simd::NeonAnyAbove2(buf + j, heap.top().score))
            j += 2;
          if (j >= bn) break;
        }
#endif
      }
      const Entry cand{buf[j], begin + j};
      if (static_cast<int>(heap.size()) < k) {
        heap.push(cand);
      } else if (cand < heap.top()) {  // "better than" orders as less-than
        heap.pop();
        heap.push(cand);
      }
      ++j;
    }
  }

  out.resize(heap.size());
  for (size_t i = heap.size(); i-- > 0;) {
    out[i] = heap.top().row;
    heap.pop();
  }
  return out;
}

namespace {

// The single eps-dominance loop both counting kernels share — the
// bit-for-bit twin of skyline/dominance.cc Dominates(). As with GapRange
// below, the accessors abstract only where the attributes live; the
// comparison logic exists once.
template <typename GetA, typename GetB>
inline bool DominatesWith(int d, const GetA& a, const GetB& b, Scalar eps) {
  bool strict = false;
  for (int i = 0; i < d; ++i) {
    const Scalar av = a(i), bv = b(i);
    if (av < bv - eps) return false;
    if (av > bv + eps) strict = true;
  }
  return strict;
}

/// Replays Dominates(cols row r, cols row j, eps) column-wise.
inline bool RowDominates(const ColumnStore& cols, int32_t r, int32_t j,
                         Scalar eps) {
  return DominatesWith(
      cols.dim(), [&](int i) { return cols.at(r, i); },
      [&](int i) { return cols.at(j, i); }, eps);
}

}  // namespace

void DominatedCounts(const ColumnStore& cols, std::span<const int32_t> rows,
                     std::span<const int32_t> refs, int cap, Scalar eps,
                     int32_t* out) {
  static obs::Counter& calls = obs::MetricRegistry::Global().GetCounter(
      "utk_exec_dominated_count_calls_total");
  static obs::Counter& counted = obs::MetricRegistry::Global().GetCounter(
      "utk_exec_dominated_count_rows_total");
  calls.Add();
  counted.Add(static_cast<int64_t>(rows.size()));
#if UTK_SIMD_X86
  if (ActiveSimdTier() == SimdTier::kAvx2) {
    simd::Avx2DominatedCounts(cols, rows, refs, cap, eps, out);
    return;
  }
#endif
#if UTK_SIMD_ARM
  if (ActiveSimdTier() == SimdTier::kNeon) {
    simd::NeonDominatedCounts(cols, rows, refs, cap, eps, out);
    return;
  }
#endif
  for (size_t j = 0; j < rows.size(); ++j) {
    int32_t count = 0;
    for (int32_t r : refs) {
      if (r == rows[j]) continue;
      if (RowDominates(cols, r, rows[j], eps) && ++count >= cap) break;
    }
    out[j] = count;
  }
}

int CountDominatorsOfPoint(const ColumnStore& cols,
                           std::span<const int32_t> rows, const Vec& v,
                           int cap, Scalar eps) {
  const int d = cols.dim();
  assert(static_cast<int>(v.size()) == d);
#if UTK_SIMD_X86
  if (ActiveSimdTier() == SimdTier::kAvx2)
    return simd::Avx2CountDominatorsOfPoint(cols, rows, v, cap, eps);
#endif
#if UTK_SIMD_ARM
  if (ActiveSimdTier() == SimdTier::kNeon)
    return simd::NeonCountDominatorsOfPoint(cols, rows, v, cap, eps);
#endif
  int count = 0;
  for (int32_t r : rows) {
    const bool dominates = DominatesWith(
        d, [&](int i) { return cols.at(r, i); },
        [&](int i) { return v[i]; }, eps);
    if (dominates && ++count >= cap) return cap;
  }
  return count;
}

namespace {

// The single range accumulation all three Range() forms share — the
// bit-for-bit twin of DiffScore + ConvexRegion::RangeOf's box path. The
// attribute accessors abstract only where p/q live (a store row or a free
// Vec); the expression tree and accumulation order are fixed here, once.
template <typename GetP, typename GetQ>
inline std::pair<Scalar, Scalar> GapRange(int d, const GetP& p, const GetQ& q,
                                          const Vec& box_lo,
                                          const Vec& box_hi) {
  const Scalar pl = p(d - 1), ql = q(d - 1);
  const Scalar offset = pl - ql;
  Scalar lo = offset, hi = offset;
  for (int i = 0; i < d - 1; ++i) {
    const Scalar c = (p(i) - pl) - (q(i) - ql);
    if (c >= 0.0) {
      lo += c * box_lo[i];
      hi += c * box_hi[i];
    } else {
      lo += c * box_hi[i];
      hi += c * box_lo[i];
    }
  }
  return {lo, hi};
}

}  // namespace

std::pair<Scalar, Scalar> BoxGapEvaluator::Range(int32_t p, int32_t q) const {
  return GapRange(
      cols_->dim(), [&](int i) { return cols_->at(p, i); },
      [&](int i) { return cols_->at(q, i); }, *lo_, *hi_);
}

std::pair<Scalar, Scalar> BoxGapEvaluator::Range(const Vec& p_attrs,
                                                 int32_t q) const {
  return GapRange(
      cols_->dim(), [&](int i) { return p_attrs[i]; },
      [&](int i) { return cols_->at(q, i); }, *lo_, *hi_);
}

std::pair<Scalar, Scalar> BoxGapEvaluator::Range(int32_t p,
                                                 const Vec& corner) const {
  return GapRange(
      cols_->dim(), [&](int i) { return cols_->at(p, i); },
      [&](int i) { return corner[i]; }, *lo_, *hi_);
}

void BoxGapEvaluator::RangeBatch(std::span<const int32_t> ps, int32_t q,
                                 Scalar* out_lo, Scalar* out_hi) const {
  assert(valid());
#if UTK_SIMD_X86
  if (ActiveSimdTier() == SimdTier::kAvx2) {
    simd::Avx2GapRangeBatch(*cols_, *lo_, *hi_, ps, q, out_lo, out_hi);
    return;
  }
#endif
#if UTK_SIMD_ARM
  if (ActiveSimdTier() == SimdTier::kNeon) {
    simd::NeonGapRangeBatch(*cols_, *lo_, *hi_, ps, q, out_lo, out_hi);
    return;
  }
#endif
  for (size_t j = 0; j < ps.size(); ++j) {
    const auto [lo, hi] = Range(ps[j], q);
    out_lo[j] = lo;
    out_hi[j] = hi;
  }
}

}  // namespace utk
