#include "exec/column_store.h"

#include <algorithm>
#include <cassert>

namespace utk {

ColumnStore::ColumnStore(const Dataset& data) {
  if (data.empty()) return;
  dim_ = DataDim(data);
  n_ = static_cast<int32_t>(data.size());
  cols_.resize(dim_);
  for (int d = 0; d < dim_; ++d) {
    cols_[d].resize(data.size());
    Scalar* out = cols_[d].data();
    for (size_t i = 0; i < data.size(); ++i) out[i] = data[i].attrs[d];
  }
  RebuildZonemaps();
}

ColumnStore::ColumnStore(const Dataset& data, std::span<const int32_t> ids) {
  if (data.empty() || ids.empty()) return;
  dim_ = DataDim(data);
  n_ = static_cast<int32_t>(ids.size());
  cols_.resize(dim_);
  for (int d = 0; d < dim_; ++d) {
    cols_[d].resize(ids.size());
    Scalar* out = cols_[d].data();
    for (size_t j = 0; j < ids.size(); ++j) out[j] = data[ids[j]].attrs[d];
  }
  RebuildZonemaps();
}

ColumnStore ColumnStore::Borrow(std::vector<const Scalar*> cols, int dim,
                                int32_t n) {
  assert(static_cast<int>(cols.size()) == dim);
  ColumnStore cs;
  cs.dim_ = dim;
  cs.n_ = n;
  cs.borrowed_ = std::move(cols);
  return cs;
}

ColumnStore ColumnStore::Borrow(std::vector<const Scalar*> cols, int dim,
                                int32_t n,
                                std::vector<ZoneEntry> col_zones) {
  assert(static_cast<int>(col_zones.size()) == dim);
  ColumnStore cs = Borrow(std::move(cols), dim, n);
  if (n > 0) {
    cs.zone_rows_ = n;  // the footer covers the whole segment: one block
    cs.zones_.resize(dim);
    for (int d = 0; d < dim; ++d) cs.zones_[d].assign(1, col_zones[d]);
  }
  return cs;
}

void ColumnStore::SetRow(int32_t row, const Vec& attrs) {
  assert(borrowed_.empty() && "borrowed ColumnStore views are read-only");
  if (dim_ == 0) {
    dim_ = static_cast<int>(attrs.size());
    cols_.resize(dim_);
    zones_.resize(dim_);
    zone_rows_ = kZoneRows;
  }
  assert(static_cast<int>(attrs.size()) == dim_);
  assert(row >= 0 && row <= n_);
  const int32_t block = row / kZoneRows;
  if (row == n_) {
    for (int d = 0; d < dim_; ++d) cols_[d].push_back(attrs[d]);
    ++n_;
    for (int d = 0; d < dim_; ++d) {
      if (block == static_cast<int32_t>(zones_[d].size())) {
        zones_[d].push_back(ZoneEntry{attrs[d], attrs[d]});
      } else {
        ZoneEntry& z = zones_[d][block];
        z.min = std::min(z.min, attrs[d]);
        z.max = std::max(z.max, attrs[d]);
      }
    }
  } else {
    // Overwrite: widen-only maintenance. The old value's contribution is
    // not retracted — the bounds stay sound but may be loose until
    // RebuildZonemaps() retightens them.
    for (int d = 0; d < dim_; ++d) {
      cols_[d][row] = attrs[d];
      ZoneEntry& z = zones_[d][block];
      z.min = std::min(z.min, attrs[d]);
      z.max = std::max(z.max, attrs[d]);
    }
  }
}

void ColumnStore::Clear() {
  dim_ = 0;
  n_ = 0;
  zone_rows_ = 0;
  cols_.clear();
  borrowed_.clear();
  zones_.clear();
}

void ColumnStore::RebuildZonemaps() {
  if (!borrowed_.empty()) return;  // borrowed zones come from the footer
  zone_rows_ = kZoneRows;
  zones_.assign(dim_, {});
  for (int d = 0; d < dim_; ++d) {
    const Scalar* c = cols_[d].data();
    const int32_t blocks = (n_ + kZoneRows - 1) / kZoneRows;
    zones_[d].reserve(blocks);
    for (int32_t b = 0; b < blocks; ++b) {
      const int32_t lo = b * kZoneRows;
      const int32_t hi = std::min<int32_t>(lo + kZoneRows, n_);
      ZoneEntry z{c[lo], c[lo]};
      for (int32_t i = lo + 1; i < hi; ++i) {
        z.min = std::min(z.min, c[i]);
        z.max = std::max(z.max, c[i]);
      }
      zones_[d].push_back(z);
    }
  }
}

std::optional<Scalar> ColumnStore::ZoneUpperBound(const Vec& w, int32_t begin,
                                                  int32_t end) const {
  if (zones_.empty() || zone_rows_ <= 0 || begin >= end) return std::nullopt;
  assert(static_cast<int>(w.size()) == dim_ - 1);
  assert(begin >= 0 && end <= n_);
  // The monotonicity argument needs w >= 0 (true for preference weights —
  // every query vector lives in the simplex); bail rather than mis-skip if
  // a caller ever feeds something else.
  for (const Scalar wi : w) {
    if (!(wi >= 0.0)) return std::nullopt;
  }
  const int32_t b0 = begin / zone_rows_;
  const int32_t b1 = (end - 1) / zone_rows_;
  const std::vector<ZoneEntry>& zl = zones_[dim_ - 1];
  if (b1 >= static_cast<int32_t>(zl.size())) return std::nullopt;
  Scalar min_last = zl[b0].min;
  Scalar ub = zl[b0].max;
  for (int32_t b = b0 + 1; b <= b1; ++b) {
    min_last = std::min(min_last, zl[b].min);
    ub = std::max(ub, zl[b].max);
  }
  // Same accumulation order as ScoreRange: init from the last column, one
  // multiply-then-add per preference dimension. Per IEEE rounding
  // monotonicity each partial sum dominates every row's partial sum, so
  // no row in [begin, end) can score above the result.
  for (int i = 0; i < dim_ - 1; ++i) {
    Scalar max_i = zones_[i][b0].max;
    for (int32_t b = b0 + 1; b <= b1; ++b)
      max_i = std::max(max_i, zones_[i][b].max);
    ub += w[i] * (max_i - min_last);
  }
  return ub;
}

}  // namespace utk
