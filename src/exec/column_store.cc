#include "exec/column_store.h"

#include <cassert>

namespace utk {

ColumnStore::ColumnStore(const Dataset& data) {
  if (data.empty()) return;
  dim_ = DataDim(data);
  n_ = static_cast<int32_t>(data.size());
  cols_.resize(dim_);
  for (int d = 0; d < dim_; ++d) {
    cols_[d].resize(data.size());
    Scalar* out = cols_[d].data();
    for (size_t i = 0; i < data.size(); ++i) out[i] = data[i].attrs[d];
  }
}

ColumnStore::ColumnStore(const Dataset& data, std::span<const int32_t> ids) {
  if (data.empty() || ids.empty()) return;
  dim_ = DataDim(data);
  n_ = static_cast<int32_t>(ids.size());
  cols_.resize(dim_);
  for (int d = 0; d < dim_; ++d) {
    cols_[d].resize(ids.size());
    Scalar* out = cols_[d].data();
    for (size_t j = 0; j < ids.size(); ++j) out[j] = data[ids[j]].attrs[d];
  }
}

ColumnStore ColumnStore::Borrow(std::vector<const Scalar*> cols, int dim,
                                int32_t n) {
  assert(static_cast<int>(cols.size()) == dim);
  ColumnStore cs;
  cs.dim_ = dim;
  cs.n_ = n;
  cs.borrowed_ = std::move(cols);
  return cs;
}

void ColumnStore::SetRow(int32_t row, const Vec& attrs) {
  assert(borrowed_.empty() && "borrowed ColumnStore views are read-only");
  if (dim_ == 0) {
    dim_ = static_cast<int>(attrs.size());
    cols_.resize(dim_);
  }
  assert(static_cast<int>(attrs.size()) == dim_);
  assert(row >= 0 && row <= n_);
  if (row == n_) {
    for (int d = 0; d < dim_; ++d) cols_[d].push_back(attrs[d]);
    ++n_;
  } else {
    for (int d = 0; d < dim_; ++d) cols_[d][row] = attrs[d];
  }
}

void ColumnStore::Clear() {
  dim_ = 0;
  n_ = 0;
  cols_.clear();
  borrowed_.clear();
}

}  // namespace utk
