// AVX2 kernel twins (4-wide double). This translation unit is the only one
// compiled with -mavx2 (and deliberately NOT -mfma: FP contraction would
// break the bit-identity contract with the scalar kernels), so nothing here
// may be called unless ActiveSimdTier() == kAvx2 — kernels.cc guarantees
// that, and BestSupportedSimdTier() guarantees the CPU agrees.
//
// Vectorization strategy, shared by every kernel: lanes are rows. The
// per-row expression tree — initialization from the last column, one
// multiply-then-add per preference dimension, comparisons against bv ± eps
// computed once — is exactly the scalar kernel's, so each lane reproduces
// the scalar result bit for bit (IEEE ops are deterministic per element;
// only cross-element order could diverge, and none is reordered). Tails
// and consumed-in-order mask walks replay the scalar loops directly.
#include "exec/simd.h"

#if UTK_SIMD_X86

#include <immintrin.h>

#include <cassert>

#include "exec/simd_kernels.h"

namespace utk {
namespace simd {

namespace {

inline __m128i LoadIdx(const int32_t* p) {
  return _mm_loadu_si128(reinterpret_cast<const __m128i*>(p));
}

// Scalar twin of kernels.cc DominatesWith for tails: a is a store row, b an
// accessor (store row or free vector).
template <typename GetB>
inline bool DominatesTail(const ColumnStore& cols, int32_t a_row,
                          const GetB& b, Scalar eps) {
  bool strict = false;
  for (int i = 0; i < cols.dim(); ++i) {
    const Scalar av = cols.at(a_row, i), bv = b(i);
    if (av < bv - eps) return false;
    if (av > bv + eps) strict = true;
  }
  return strict;
}

// 4-lane eps-dominance mask: bit l set when store row idx[l] dominates the
// point whose per-dimension values b(i) provides. All dimensions are
// evaluated (no early exit) — the predicate is order-independent.
template <typename GetB>
inline int DominateMask4(const ColumnStore& cols, __m128i idx, const GetB& b,
                         Scalar eps) {
  __m256d fail = _mm256_setzero_pd();
  __m256d strict = _mm256_setzero_pd();
  for (int i = 0; i < cols.dim(); ++i) {
    const Scalar bv = b(i);
    const __m256d av = _mm256_i32gather_pd(cols.col(i), idx, 8);
    fail = _mm256_or_pd(
        fail, _mm256_cmp_pd(av, _mm256_set1_pd(bv - eps), _CMP_LT_OQ));
    strict = _mm256_or_pd(
        strict, _mm256_cmp_pd(av, _mm256_set1_pd(bv + eps), _CMP_GT_OQ));
  }
  return _mm256_movemask_pd(_mm256_andnot_pd(fail, strict));
}

}  // namespace

void Avx2ScoreRange(const ColumnStore& cols, const Vec& w, int32_t begin,
                    int32_t end, Scalar* out) {
  const int d = cols.dim();
  const Scalar* last = cols.col(d - 1);
  const int32_t n = end - begin;
  int32_t j = 0;
  for (; j + 4 <= n; j += 4)
    _mm256_storeu_pd(out + j, _mm256_loadu_pd(last + begin + j));
  for (; j < n; ++j) out[j] = last[begin + j];
  for (int i = 0; i < d - 1; ++i) {
    const Scalar wi = w[i];
    const __m256d wv = _mm256_set1_pd(wi);
    const Scalar* ci = cols.col(i);
    j = 0;
    for (; j + 4 <= n; j += 4) {
      const __m256d diff = _mm256_sub_pd(_mm256_loadu_pd(ci + begin + j),
                                         _mm256_loadu_pd(last + begin + j));
      const __m256d acc = _mm256_add_pd(_mm256_loadu_pd(out + j),
                                        _mm256_mul_pd(wv, diff));
      _mm256_storeu_pd(out + j, acc);
    }
    for (; j < n; ++j) out[j] += wi * (ci[begin + j] - last[begin + j]);
  }
}

void Avx2ScoreBatch(const ColumnStore& cols, const Vec& w,
                    std::span<const int32_t> rows, Scalar* out) {
  const int d = cols.dim();
  const Scalar* last = cols.col(d - 1);
  const size_t n = rows.size();
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m128i idx = LoadIdx(rows.data() + j);
    const __m256d lastv = _mm256_i32gather_pd(last, idx, 8);
    __m256d acc = lastv;
    for (int i = 0; i < d - 1; ++i) {
      const __m256d civ = _mm256_i32gather_pd(cols.col(i), idx, 8);
      acc = _mm256_add_pd(
          acc, _mm256_mul_pd(_mm256_set1_pd(w[i]), _mm256_sub_pd(civ, lastv)));
    }
    _mm256_storeu_pd(out + j, acc);
  }
  for (; j < n; ++j) {
    const int32_t row = rows[j];
    Scalar acc = last[row];
    for (int i = 0; i < d - 1; ++i)
      acc += w[i] * (cols.col(i)[row] - last[row]);
    out[j] = acc;
  }
}

bool Avx2AnyAbove4(const Scalar* vals, Scalar threshold) {
  const __m256d cmp = _mm256_cmp_pd(_mm256_loadu_pd(vals),
                                    _mm256_set1_pd(threshold), _CMP_GT_OQ);
  return _mm256_movemask_pd(cmp) != 0;
}

void Avx2DominatedCounts(const ColumnStore& cols,
                         std::span<const int32_t> rows,
                         std::span<const int32_t> refs, int cap, Scalar eps,
                         int32_t* out) {
  const size_t nref = refs.size();
  for (size_t j = 0; j < rows.size(); ++j) {
    const int32_t row = rows[j];
    const auto b = [&](int i) { return cols.at(row, i); };
    int32_t count = 0;
    bool done = false;
    size_t r = 0;
    for (; !done && r + 4 <= nref; r += 4) {
      const int mask = DominateMask4(cols, LoadIdx(refs.data() + r), b, eps);
      if (mask == 0) continue;
      // Consume lanes in reference order so the cap break lands exactly
      // where the scalar loop's would.
      for (int lane = 0; lane < 4; ++lane) {
        if ((mask >> lane & 1) == 0 || refs[r + lane] == row) continue;
        if (++count >= cap) {
          done = true;
          break;
        }
      }
    }
    for (; !done && r < nref; ++r) {
      if (refs[r] == row) continue;
      if (DominatesTail(cols, refs[r], b, eps) && ++count >= cap) done = true;
    }
    out[j] = count;
  }
}

int Avx2CountDominatorsOfPoint(const ColumnStore& cols,
                               std::span<const int32_t> rows, const Vec& v,
                               int cap, Scalar eps) {
  assert(static_cast<int>(v.size()) == cols.dim());
  const auto b = [&](int i) { return v[i]; };
  const size_t n = rows.size();
  int count = 0;
  size_t r = 0;
  for (; r + 4 <= n; r += 4) {
    const int mask = DominateMask4(cols, LoadIdx(rows.data() + r), b, eps);
    if (mask == 0) continue;
    for (int lane = 0; lane < 4; ++lane) {
      if ((mask >> lane & 1) == 0) continue;
      if (++count >= cap) return cap;
    }
  }
  for (; r < n; ++r) {
    if (DominatesTail(cols, rows[r], b, eps) && ++count >= cap) return cap;
  }
  return count;
}

void Avx2GapRangeBatch(const ColumnStore& cols, const Vec& box_lo,
                       const Vec& box_hi, std::span<const int32_t> ps,
                       int32_t q, Scalar* out_lo, Scalar* out_hi) {
  const int d = cols.dim();
  const Scalar ql = cols.at(q, d - 1);
  const size_t n = ps.size();
  size_t j = 0;
  for (; j + 4 <= n; j += 4) {
    const __m128i idx = LoadIdx(ps.data() + j);
    const __m256d pl = _mm256_i32gather_pd(cols.col(d - 1), idx, 8);
    const __m256d offset = _mm256_sub_pd(pl, _mm256_set1_pd(ql));
    __m256d lo = offset, hi = offset;
    for (int i = 0; i < d - 1; ++i) {
      const __m256d pv = _mm256_i32gather_pd(cols.col(i), idx, 8);
      // (p(i) - pl) - (q(i) - ql): the inner q-side difference is one
      // scalar op, broadcast — identical to the scalar GapRange's value.
      const __m256d c = _mm256_sub_pd(_mm256_sub_pd(pv, pl),
                                      _mm256_set1_pd(cols.at(q, i) - ql));
      const __m256d ge = _mm256_cmp_pd(c, _mm256_setzero_pd(), _CMP_GE_OQ);
      const __m256d blo = _mm256_set1_pd(box_lo[i]);
      const __m256d bhi = _mm256_set1_pd(box_hi[i]);
      lo = _mm256_add_pd(lo, _mm256_mul_pd(c, _mm256_blendv_pd(bhi, blo, ge)));
      hi = _mm256_add_pd(hi, _mm256_mul_pd(c, _mm256_blendv_pd(blo, bhi, ge)));
    }
    _mm256_storeu_pd(out_lo + j, lo);
    _mm256_storeu_pd(out_hi + j, hi);
  }
  for (; j < n; ++j) {
    const int32_t p = ps[j];
    const Scalar pl = cols.at(p, d - 1);
    const Scalar offset = pl - ql;
    Scalar lo = offset, hi = offset;
    for (int i = 0; i < d - 1; ++i) {
      const Scalar c = (cols.at(p, i) - pl) - (cols.at(q, i) - ql);
      if (c >= 0.0) {
        lo += c * box_lo[i];
        hi += c * box_hi[i];
      } else {
        lo += c * box_hi[i];
        hi += c * box_lo[i];
      }
    }
    out_lo[j] = lo;
    out_hi[j] = hi;
  }
}

}  // namespace simd
}  // namespace utk

#endif  // UTK_SIMD_X86
