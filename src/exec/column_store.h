// ColumnStore — the SoA (structure-of-arrays) mirror of a Dataset.
//
// Every UTK operator bottoms out in millions of per-record score and
// dominance evaluations. A Record keeps its attributes in a heap-allocated
// std::vector, so AoS hot loops chase one pointer per record and defeat
// vectorization. The ColumnStore lays the same catalog out as one
// contiguous Scalar array per dimension, indexed by the records' stable
// ids: column d holds attrs[d] of record 0, 1, 2, ... back to back. The
// batched kernels in exec/kernels.h sweep these columns with simple
// contiguous loops the compiler auto-vectorizes.
//
// Build patterns:
//   * once per catalog/shard (Engine, PartitionedEngine shards),
//   * gathered over a candidate band (RSA/JAA refinement), where row j
//     mirrors data[ids[j]], and
//   * incrementally (LiveEngine): SetRow extends or overwrites a row in
//     O(dim), keeping the store in lockstep with an epoch-versioned
//     catalog — tombstoned rows simply keep their last attributes, exactly
//     like the live engine's Dataset does.
//
// The store never owns record ids or liveness; callers index it with the
// same ids/rows they would use on the mirrored Dataset.
// Zonemaps: owned stores additionally keep per-block min/max for every
// column (kZoneRows rows per block, aligned with the top-k scan's block
// size), so threshold-driven scans can skip whole blocks. Borrowed views
// reuse the segment footer's per-column min/max as one coarse block when
// the storage tier hands them over (see Borrow). ZoneUpperBound() turns a
// block's entries into a conservative score upper bound; maintenance on
// SetRow is widen-only (see RebuildZonemaps).
#ifndef UTK_EXEC_COLUMN_STORE_H_
#define UTK_EXEC_COLUMN_STORE_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/types.h"

namespace utk {

class ColumnStore {
 public:
  /// Per-block, per-column attribute bounds backing the skip decisions.
  struct ZoneEntry {
    Scalar min;
    Scalar max;
  };
  /// Rows per zonemap block on owned stores. Must match the top-k scan's
  /// scoring block so a skipped block is exactly one scan block.
  static constexpr int32_t kZoneRows = 1024;

  ColumnStore() = default;

  /// Full mirror: row i holds data[i].attrs (the repo invariant
  /// data[i].id == i makes rows stable-id indexable).
  explicit ColumnStore(const Dataset& data);

  /// Gathered mirror: row j holds data[ids[j]].attrs. Used for candidate
  /// bands, whose few hundred rows are scored thousands of times during
  /// refinement.
  ColumnStore(const Dataset& data, std::span<const int32_t> ids);

  /// Borrowed zero-copy view: column d aliases cols[d], an external
  /// contiguous array of `n` Scalars the caller keeps alive and immutable
  /// for the view's lifetime. The storage tier builds these directly over
  /// the column blocks of an mmap'd segment, so a cold open serves batched
  /// kernels without copying a byte. Borrowed stores are read-only: SetRow
  /// asserts, Clear() drops the borrow.
  static ColumnStore Borrow(std::vector<const Scalar*> cols, int dim,
                            int32_t n);

  /// Borrowed view that additionally carries one whole-column {min, max}
  /// per dimension — the segment footer's zonemaps — as a single coarse
  /// zone block, so threshold scans over a mapped segment can skip the
  /// whole store when it cannot beat the running top-k.
  static ColumnStore Borrow(std::vector<const Scalar*> cols, int dim,
                            int32_t n, std::vector<ZoneEntry> col_zones);

  /// True when the columns alias external memory (see Borrow).
  bool borrowed() const { return !borrowed_.empty(); }

  int dim() const { return dim_; }
  int32_t size() const { return n_; }
  bool empty() const { return n_ == 0; }

  /// Contiguous column d (length size()).
  const Scalar* col(int d) const {
    return borrowed_.empty() ? cols_[d].data() : borrowed_[d];
  }
  Scalar at(int32_t row, int d) const { return col(d)[row]; }

  /// Writes `attrs` at `row`, growing the store by exactly one row when
  /// row == size(). First write on an empty store fixes dim(). This is the
  /// live-update maintenance hook: inserts append or overwrite tombstoned
  /// rows in O(dim) without touching the other columns' prefixes. Owned
  /// stores only — a borrowed view's memory belongs to the segment.
  void SetRow(int32_t row, const Vec& attrs);

  void Clear();

  /// True when the store carries zonemap metadata (owned stores always do;
  /// borrowed views only via the footer-carrying Borrow overload).
  bool has_zonemaps() const { return !zones_.empty(); }
  /// Rows per zone block: kZoneRows on owned stores, size() on a
  /// footer-backed borrowed view (one coarse block).
  int32_t zone_rows() const { return zone_rows_; }
  /// Zone entry for `block` of column d (testing/inspection).
  ZoneEntry zone(int d, int32_t block) const { return zones_[d][block]; }

  /// Conservative upper bound on ScoreRange over rows [begin, end): no row
  /// in the range can score above the returned value under weights w.
  /// Computed from the covering zone blocks in the exact accumulation
  /// order of the scalar kernel (ub = max(last); ub += w[i] * (max(col i)
  /// - min(last)) per dimension), so IEEE rounding monotonicity makes the
  /// bound sound for non-negative weights — any negative weight, a store
  /// without zonemaps, or an empty range returns nullopt (no skipping).
  std::optional<Scalar> ZoneUpperBound(const Vec& w, int32_t begin,
                                       int32_t end) const;

  /// Recomputes the zonemaps from the current column contents. SetRow
  /// maintenance is widen-only — an overwrite that shrinks a value leaves
  /// its block's bounds loose (still sound, just less skippy) — so
  /// long-lived mutable stores may retighten after churn.
  void RebuildZonemaps();

 private:
  int dim_ = 0;
  int32_t n_ = 0;
  int32_t zone_rows_ = 0;  ///< rows per zone block; 0 = no zonemaps
  std::vector<std::vector<Scalar>> cols_;  ///< one contiguous array per dim
  std::vector<const Scalar*> borrowed_;    ///< non-empty in borrowed mode
  std::vector<std::vector<ZoneEntry>> zones_;  ///< [dim][block], optional
};

}  // namespace utk

#endif  // UTK_EXEC_COLUMN_STORE_H_
