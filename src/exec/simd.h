// Runtime SIMD dispatch for the batched kernels in exec/kernels.h.
//
// Three tiers: the scalar reference loops (the bitwise ground truth every
// other path is tested against), AVX2 (4-wide double, x86-64), and NEON
// (2-wide double, aarch64). The tier is resolved once, on first use:
//
//   UTK_SIMD=0|scalar|off   force the scalar reference kernels
//   UTK_SIMD=avx2 / neon    request a tier (falls back to scalar when the
//                           CPU or build does not support it)
//   unset / auto            best tier the running CPU supports
//
// The vectorized kernels are *bit-identical* to their scalar twins, not
// merely close: they vectorize across rows (lanes are independent records),
// never across the accumulation dimension, use separate multiply and add
// (no FMA contraction — the AVX2 translation unit is compiled with -mavx2
// only), and replay the exact per-element expression trees of kernels.cc.
// The differential harness (tests/test_differential.cc) and the forced-
// scalar CI job hold all tiers to EXPECT_EQ on doubles.
#ifndef UTK_EXEC_SIMD_H_
#define UTK_EXEC_SIMD_H_

#if defined(__x86_64__) || defined(_M_X64)
#define UTK_SIMD_X86 1
#else
#define UTK_SIMD_X86 0
#endif
#if defined(__aarch64__)
#define UTK_SIMD_ARM 1
#else
#define UTK_SIMD_ARM 0
#endif

namespace utk {

enum class SimdTier {
  kScalar = 0,  ///< reference loops in kernels.cc
  kAvx2 = 1,    ///< 4-wide double, x86-64 with AVX2
  kNeon = 2,    ///< 2-wide double, aarch64
};

const char* SimdTierName(SimdTier tier);

/// Best tier the running CPU (and this build) supports.
SimdTier BestSupportedSimdTier();

/// The tier the kernels dispatch on: resolved once from UTK_SIMD (see file
/// comment) on first call, then cached for the process lifetime.
SimdTier ActiveSimdTier();

/// Overrides the active tier — the hook tests and benches use to compare
/// tiers within one process. Unsupported requests clamp to kScalar.
void SetSimdTier(SimdTier tier);

/// Row-lanes the active tier processes per step (1 / 4 / 2). Batch
/// consumers (the top-k scan's threshold probe, the gap-range batcher) use
/// this to size their speculative chunks so scalar dispatch never computes
/// a single wasted element.
int SimdWidth();

}  // namespace utk

#endif  // UTK_EXEC_SIMD_H_
