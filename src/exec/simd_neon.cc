// NEON kernel twins (2-wide double, aarch64). Mirror of simd_avx2.cc at
// half the width: lanes are rows, per-row arithmetic order is the scalar
// kernel's, multiply and add stay separate (no vfma), so each lane is
// bit-identical to the scalar reference. aarch64 has no gather — gathered
// lanes are assembled from two scalar loads, which still halves the
// per-dimension compare/accumulate work.
#include "exec/simd.h"

#if UTK_SIMD_ARM

#include <arm_neon.h>

#include <cassert>

#include "exec/simd_kernels.h"

namespace utk {
namespace simd {

namespace {

inline float64x2_t Gather2(const Scalar* base, int32_t i0, int32_t i1) {
  float64x2_t v = vdupq_n_f64(base[i0]);
  return vsetq_lane_f64(base[i1], v, 1);
}

template <typename GetB>
inline bool DominatesTail(const ColumnStore& cols, int32_t a_row,
                          const GetB& b, Scalar eps) {
  bool strict = false;
  for (int i = 0; i < cols.dim(); ++i) {
    const Scalar av = cols.at(a_row, i), bv = b(i);
    if (av < bv - eps) return false;
    if (av > bv + eps) strict = true;
  }
  return strict;
}

// 2-lane eps-dominance mask (bit l set when row idx[l] dominates b).
template <typename GetB>
inline int DominateMask2(const ColumnStore& cols, int32_t i0, int32_t i1,
                         const GetB& b, Scalar eps) {
  uint64x2_t fail = vdupq_n_u64(0);
  uint64x2_t strict = vdupq_n_u64(0);
  for (int i = 0; i < cols.dim(); ++i) {
    const Scalar bv = b(i);
    const float64x2_t av = Gather2(cols.col(i), i0, i1);
    fail = vorrq_u64(fail, vcltq_f64(av, vdupq_n_f64(bv - eps)));
    strict = vorrq_u64(strict, vcgtq_f64(av, vdupq_n_f64(bv + eps)));
  }
  const uint64x2_t dom = vbicq_u64(strict, fail);  // strict & ~fail
  return (vgetq_lane_u64(dom, 0) ? 1 : 0) | (vgetq_lane_u64(dom, 1) ? 2 : 0);
}

}  // namespace

void NeonScoreRange(const ColumnStore& cols, const Vec& w, int32_t begin,
                    int32_t end, Scalar* out) {
  const int d = cols.dim();
  const Scalar* last = cols.col(d - 1);
  const int32_t n = end - begin;
  int32_t j = 0;
  for (; j + 2 <= n; j += 2) vst1q_f64(out + j, vld1q_f64(last + begin + j));
  for (; j < n; ++j) out[j] = last[begin + j];
  for (int i = 0; i < d - 1; ++i) {
    const Scalar wi = w[i];
    const float64x2_t wv = vdupq_n_f64(wi);
    const Scalar* ci = cols.col(i);
    j = 0;
    for (; j + 2 <= n; j += 2) {
      const float64x2_t diff =
          vsubq_f64(vld1q_f64(ci + begin + j), vld1q_f64(last + begin + j));
      vst1q_f64(out + j, vaddq_f64(vld1q_f64(out + j), vmulq_f64(wv, diff)));
    }
    for (; j < n; ++j) out[j] += wi * (ci[begin + j] - last[begin + j]);
  }
}

void NeonScoreBatch(const ColumnStore& cols, const Vec& w,
                    std::span<const int32_t> rows, Scalar* out) {
  const int d = cols.dim();
  const Scalar* last = cols.col(d - 1);
  const size_t n = rows.size();
  size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const int32_t i0 = rows[j], i1 = rows[j + 1];
    const float64x2_t lastv = Gather2(last, i0, i1);
    float64x2_t acc = lastv;
    for (int i = 0; i < d - 1; ++i) {
      const float64x2_t civ = Gather2(cols.col(i), i0, i1);
      acc = vaddq_f64(acc, vmulq_f64(vdupq_n_f64(w[i]), vsubq_f64(civ, lastv)));
    }
    vst1q_f64(out + j, acc);
  }
  for (; j < n; ++j) {
    const int32_t row = rows[j];
    Scalar acc = last[row];
    for (int i = 0; i < d - 1; ++i)
      acc += w[i] * (cols.col(i)[row] - last[row]);
    out[j] = acc;
  }
}

bool NeonAnyAbove2(const Scalar* vals, Scalar threshold) {
  const uint64x2_t cmp = vcgtq_f64(vld1q_f64(vals), vdupq_n_f64(threshold));
  return (vgetq_lane_u64(cmp, 0) | vgetq_lane_u64(cmp, 1)) != 0;
}

void NeonDominatedCounts(const ColumnStore& cols,
                         std::span<const int32_t> rows,
                         std::span<const int32_t> refs, int cap, Scalar eps,
                         int32_t* out) {
  const size_t nref = refs.size();
  for (size_t j = 0; j < rows.size(); ++j) {
    const int32_t row = rows[j];
    const auto b = [&](int i) { return cols.at(row, i); };
    int32_t count = 0;
    bool done = false;
    size_t r = 0;
    for (; !done && r + 2 <= nref; r += 2) {
      const int mask = DominateMask2(cols, refs[r], refs[r + 1], b, eps);
      if (mask == 0) continue;
      for (int lane = 0; lane < 2; ++lane) {
        if ((mask >> lane & 1) == 0 || refs[r + lane] == row) continue;
        if (++count >= cap) {
          done = true;
          break;
        }
      }
    }
    for (; !done && r < nref; ++r) {
      if (refs[r] == row) continue;
      if (DominatesTail(cols, refs[r], b, eps) && ++count >= cap) done = true;
    }
    out[j] = count;
  }
}

int NeonCountDominatorsOfPoint(const ColumnStore& cols,
                               std::span<const int32_t> rows, const Vec& v,
                               int cap, Scalar eps) {
  assert(static_cast<int>(v.size()) == cols.dim());
  const auto b = [&](int i) { return v[i]; };
  const size_t n = rows.size();
  int count = 0;
  size_t r = 0;
  for (; r + 2 <= n; r += 2) {
    const int mask = DominateMask2(cols, rows[r], rows[r + 1], b, eps);
    if (mask == 0) continue;
    for (int lane = 0; lane < 2; ++lane) {
      if ((mask >> lane & 1) == 0) continue;
      if (++count >= cap) return cap;
    }
  }
  for (; r < n; ++r) {
    if (DominatesTail(cols, rows[r], b, eps) && ++count >= cap) return cap;
  }
  return count;
}

void NeonGapRangeBatch(const ColumnStore& cols, const Vec& box_lo,
                       const Vec& box_hi, std::span<const int32_t> ps,
                       int32_t q, Scalar* out_lo, Scalar* out_hi) {
  const int d = cols.dim();
  const Scalar ql = cols.at(q, d - 1);
  const size_t n = ps.size();
  size_t j = 0;
  for (; j + 2 <= n; j += 2) {
    const int32_t p0 = ps[j], p1 = ps[j + 1];
    const float64x2_t pl = Gather2(cols.col(d - 1), p0, p1);
    const float64x2_t offset = vsubq_f64(pl, vdupq_n_f64(ql));
    float64x2_t lo = offset, hi = offset;
    for (int i = 0; i < d - 1; ++i) {
      const float64x2_t pv = Gather2(cols.col(i), p0, p1);
      const float64x2_t c = vsubq_f64(vsubq_f64(pv, pl),
                                      vdupq_n_f64(cols.at(q, i) - ql));
      const uint64x2_t ge = vcgeq_f64(c, vdupq_n_f64(0.0));
      const float64x2_t blo = vdupq_n_f64(box_lo[i]);
      const float64x2_t bhi = vdupq_n_f64(box_hi[i]);
      lo = vaddq_f64(lo, vmulq_f64(c, vbslq_f64(ge, blo, bhi)));
      hi = vaddq_f64(hi, vmulq_f64(c, vbslq_f64(ge, bhi, blo)));
    }
    vst1q_f64(out_lo + j, lo);
    vst1q_f64(out_hi + j, hi);
  }
  for (; j < n; ++j) {
    const int32_t p = ps[j];
    const Scalar pl = cols.at(p, d - 1);
    const Scalar offset = pl - ql;
    Scalar lo = offset, hi = offset;
    for (int i = 0; i < d - 1; ++i) {
      const Scalar c = (cols.at(p, i) - pl) - (cols.at(q, i) - ql);
      if (c >= 0.0) {
        lo += c * box_lo[i];
        hi += c * box_hi[i];
      } else {
        lo += c * box_hi[i];
        hi += c * box_lo[i];
      }
    }
    out_lo[j] = lo;
    out_hi[j] = hi;
  }
}

}  // namespace simd
}  // namespace utk

#endif  // UTK_SIMD_ARM
