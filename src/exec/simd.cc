#include "exec/simd.h"

#include <atomic>
#include <cstdlib>
#include <cstring>

namespace utk {

namespace {

// -1 = unresolved; otherwise a SimdTier value. Racing first calls resolve
// to the same value, so the relaxed publish is benign.
std::atomic<int> g_tier{-1};

bool EqualsIgnoreCase(const char* a, const char* b) {
  for (; *a != '\0' && *b != '\0'; ++a, ++b) {
    const char ca = *a >= 'A' && *a <= 'Z' ? *a - 'A' + 'a' : *a;
    if (ca != *b) return false;
  }
  return *a == '\0' && *b == '\0';
}

SimdTier Clamp(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return SimdTier::kScalar;
    case SimdTier::kAvx2:
      return BestSupportedSimdTier() == SimdTier::kAvx2 ? SimdTier::kAvx2
                                                        : SimdTier::kScalar;
    case SimdTier::kNeon:
      return BestSupportedSimdTier() == SimdTier::kNeon ? SimdTier::kNeon
                                                        : SimdTier::kScalar;
  }
  return SimdTier::kScalar;
}

SimdTier ResolveFromEnv() {
  const char* env = std::getenv("UTK_SIMD");
  if (env == nullptr || *env == '\0') return BestSupportedSimdTier();
  if (EqualsIgnoreCase(env, "0") || EqualsIgnoreCase(env, "off") ||
      EqualsIgnoreCase(env, "scalar"))
    return SimdTier::kScalar;
  if (EqualsIgnoreCase(env, "avx2")) return Clamp(SimdTier::kAvx2);
  if (EqualsIgnoreCase(env, "neon")) return Clamp(SimdTier::kNeon);
  // "1" / "on" / "auto" / anything unrecognized: best supported.
  return BestSupportedSimdTier();
}

}  // namespace

const char* SimdTierName(SimdTier tier) {
  switch (tier) {
    case SimdTier::kScalar:
      return "scalar";
    case SimdTier::kAvx2:
      return "avx2";
    case SimdTier::kNeon:
      return "neon";
  }
  return "scalar";
}

SimdTier BestSupportedSimdTier() {
#if UTK_SIMD_X86
  return __builtin_cpu_supports("avx2") ? SimdTier::kAvx2 : SimdTier::kScalar;
#elif UTK_SIMD_ARM
  return SimdTier::kNeon;  // NEON is baseline on aarch64
#else
  return SimdTier::kScalar;
#endif
}

SimdTier ActiveSimdTier() {
  int tier = g_tier.load(std::memory_order_acquire);
  if (tier < 0) {
    tier = static_cast<int>(ResolveFromEnv());
    g_tier.store(tier, std::memory_order_release);
  }
  return static_cast<SimdTier>(tier);
}

void SetSimdTier(SimdTier tier) {
  g_tier.store(static_cast<int>(Clamp(tier)), std::memory_order_release);
}

int SimdWidth() {
  switch (ActiveSimdTier()) {
    case SimdTier::kAvx2:
      return 4;
    case SimdTier::kNeon:
      return 2;
    case SimdTier::kScalar:
      break;
  }
  return 1;
}

}  // namespace utk
