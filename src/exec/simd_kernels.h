// Internal per-tier kernel entry points, dispatched from exec/kernels.cc.
//
// Each function is the bit-identical vector twin of the scalar loop of the
// same shape in kernels.cc: lanes are rows, the per-row expression tree and
// accumulation order are the scalar ones, multiply and add stay separate
// (no FMA). The AVX2 set lives in simd_avx2.cc (compiled with -mavx2 on
// x86-64 only); the NEON set in simd_neon.cc (aarch64 only). Nothing here
// is public API — consumers go through kernels.h.
#ifndef UTK_EXEC_SIMD_KERNELS_H_
#define UTK_EXEC_SIMD_KERNELS_H_

#include <cstdint>
#include <span>

#include "common/types.h"
#include "exec/column_store.h"
#include "exec/simd.h"

namespace utk {
namespace simd {

#if UTK_SIMD_X86
void Avx2ScoreRange(const ColumnStore& cols, const Vec& w, int32_t begin,
                    int32_t end, Scalar* out);
void Avx2ScoreBatch(const ColumnStore& cols, const Vec& w,
                    std::span<const int32_t> rows, Scalar* out);
/// True when any of vals[0..3] > threshold (the top-k scan's block probe).
bool Avx2AnyAbove4(const Scalar* vals, Scalar threshold);
void Avx2DominatedCounts(const ColumnStore& cols,
                         std::span<const int32_t> rows,
                         std::span<const int32_t> refs, int cap, Scalar eps,
                         int32_t* out);
int Avx2CountDominatorsOfPoint(const ColumnStore& cols,
                               std::span<const int32_t> rows, const Vec& v,
                               int cap, Scalar eps);
/// GapRange(ps[j], q) for each lane j into (out_lo[j], out_hi[j]).
void Avx2GapRangeBatch(const ColumnStore& cols, const Vec& box_lo,
                       const Vec& box_hi, std::span<const int32_t> ps,
                       int32_t q, Scalar* out_lo, Scalar* out_hi);
#endif  // UTK_SIMD_X86

#if UTK_SIMD_ARM
void NeonScoreRange(const ColumnStore& cols, const Vec& w, int32_t begin,
                    int32_t end, Scalar* out);
void NeonScoreBatch(const ColumnStore& cols, const Vec& w,
                    std::span<const int32_t> rows, Scalar* out);
/// True when any of vals[0..1] > threshold.
bool NeonAnyAbove2(const Scalar* vals, Scalar threshold);
void NeonDominatedCounts(const ColumnStore& cols,
                         std::span<const int32_t> rows,
                         std::span<const int32_t> refs, int cap, Scalar eps,
                         int32_t* out);
int NeonCountDominatorsOfPoint(const ColumnStore& cols,
                               std::span<const int32_t> rows, const Vec& v,
                               int cap, Scalar eps);
void NeonGapRangeBatch(const ColumnStore& cols, const Vec& box_lo,
                       const Vec& box_hi, std::span<const int32_t> ps,
                       int32_t q, Scalar* out_lo, Scalar* out_hi);
#endif  // UTK_SIMD_ARM

}  // namespace simd
}  // namespace utk

#endif  // UTK_EXEC_SIMD_KERNELS_H_
