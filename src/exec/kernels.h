// Batched execution kernels over a ColumnStore.
//
// Each kernel is the SoA twin of a scalar hot-loop body elsewhere in the
// library, written as contiguous per-column sweeps the compiler
// auto-vectorizes. The per-row arithmetic replays the scalar reference in
// the exact same operation order, so every kernel is bit-for-bit equal to
// its AoS counterpart — the differential tests (tests/test_exec.cc) and
// the 200-draw engine fuzz (tests/test_differential.cc) pin that down:
//
//   ScoreAll / ScoreBatch / ScoreRange  ==  geometry/linear.h Score()
//   TopKScan                            ==  core/topk.h TopK()
//   DominatedCounts / CountDominatorsOfPoint == skyline/dominance.h loops
//   BoxGapEvaluator::Range              ==  rdominance.cc DiffScore +
//                                           ConvexRegion::RangeOf (box path)
//
// Consumers: the r-skyband filters (skyline/rskyband.cc), top-k probes
// (core/topk.cc), RSA/JAA refinement scoring (core/rsa.cc, core/jaa.cc),
// R-tree leaf scans inside those traversals, the per-shard filters of the
// partitioned engine (src/dist/), and the live engine's incrementally
// maintained store (src/live/). CountDominatorsOfPoint backs the SK
// k-skyband membership probes; DominatedCounts is the many-vs-many form
// behind the k-skyband brute-force oracle (skyline/skyband.cc).
//
// Every kernel dispatches on exec/simd.h ActiveSimdTier(): the scalar
// loops below are the reference; the AVX2/NEON twins (simd_avx2.cc,
// simd_neon.cc) vectorize across rows with the identical per-row
// expression tree and are bit-identical by construction. TopKScan
// additionally consults the store's zonemaps (column_store.h) to skip
// whole blocks that cannot beat the running top-k threshold.
#ifndef UTK_EXEC_KERNELS_H_
#define UTK_EXEC_KERNELS_H_

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "exec/column_store.h"
#include "geometry/region.h"

namespace utk {

/// out[j] = S(row j)(w) for every row of the store; |out| >= size().
/// Identical arithmetic order to Score(): start from the last attribute,
/// then add w[i] * (attr_i - attr_last) in dimension order.
void ScoreAll(const ColumnStore& cols, const Vec& w, Scalar* out);

/// out[j] = S(rows[j])(w) — the gathered form, for scoring an R-tree leaf's
/// record ids or a candidate pool in one pass.
void ScoreBatch(const ColumnStore& cols, const Vec& w,
                std::span<const int32_t> rows, Scalar* out);

/// out[j - begin] = S(row j)(w) for rows [begin, end).
void ScoreRange(const ColumnStore& cols, const Vec& w, int32_t begin,
                int32_t end, Scalar* out);

/// The k highest-scoring rows under w, best first, ties by smaller row —
/// the same contract as core/topk.h TopK(). Fused loop: scores stream
/// through a block buffer straight into a bounded heap, so the full score
/// vector is never materialized.
std::vector<int32_t> TopKScan(const ColumnStore& cols, const Vec& w, int k);

/// out[j] = number of rows r in `refs` with r != rows[j] whose attributes
/// dominate rows[j]'s (skyline/dominance.h Dominates with `eps`), counted
/// exactly up to `cap` and clamped there.
void DominatedCounts(const ColumnStore& cols, std::span<const int32_t> rows,
                     std::span<const int32_t> refs, int cap, Scalar eps,
                     int32_t* out);

/// Number of rows in `rows` dominating the free-standing point `v`, capped
/// at `cap` — the k-skyband membership probe as one batched sweep.
int CountDominatorsOfPoint(const ColumnStore& cols,
                           std::span<const int32_t> rows, const Vec& v,
                           int cap, Scalar eps);

/// Allocation-free score-difference ranges over an axis-parallel box
/// region. RDominance() builds a temporary coefficient vector per pair and
/// routes it through ConvexRegion::RangeOf; for box regions this evaluator
/// computes the same (min, max) of S(p) - S(q) straight from the columns —
/// same expressions, same accumulation order, hence bit-identical — with
/// zero heap traffic. valid() is false for non-box regions (LP territory);
/// callers must fall back to RDominance() there. The evaluator borrows the
/// store and the region's box vectors — both must outlive it (passing a
/// temporary ConvexRegion leaves lo_/hi_ dangling).
class BoxGapEvaluator {
 public:
  BoxGapEvaluator(const ColumnStore& cols, const ConvexRegion& r)
      : cols_(&cols) {
    if (r.is_box() && r.dim() == cols.dim() - 1) {
      lo_ = &r.box_lo();
      hi_ = &r.box_hi();
    }
  }

  bool valid() const { return lo_ != nullptr; }

  /// Range of S(row p) - S(row q) over the box.
  std::pair<Scalar, Scalar> Range(int32_t p, int32_t q) const;

  /// Range of S(p_attrs) - S(row q): the external-pruner form (the pruner
  /// record lives in another shard's store or none at all).
  std::pair<Scalar, Scalar> Range(const Vec& p_attrs, int32_t q) const;

  /// Range of S(row p) - S(corner): the MBB top-corner form used by subtree
  /// pruning.
  std::pair<Scalar, Scalar> Range(int32_t p, const Vec& corner) const;

  /// Range(ps[j], q) for every lane j into (out_lo[j], out_hi[j]) — the
  /// batched row-vs-row form the r-skyband member scans consume. Lanes are
  /// independent p rows; each reproduces Range(p, q) bit for bit on every
  /// tier. Callers chunk `ps` by SimdWidth() when they intend to consume
  /// lanes speculatively (dominator scans that break at a cap).
  void RangeBatch(std::span<const int32_t> ps, int32_t q, Scalar* out_lo,
                  Scalar* out_hi) const;

 private:
  const ColumnStore* cols_;
  const Vec* lo_ = nullptr;
  const Vec* hi_ = nullptr;
};

}  // namespace utk

#endif  // UTK_EXEC_KERNELS_H_
