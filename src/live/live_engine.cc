#include "live/live_engine.h"

#include <algorithm>
#include <cassert>
#include <utility>

#include "core/jaa.h"
#include "core/rsa.h"
#include "core/topk.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "skyline/rskyband.h"

namespace utk {
namespace {

QueryResult Fail(const QuerySpec& spec, std::string why) {
  QueryResult r;
  r.ok = false;
  r.error = std::move(why);
  r.mode = spec.mode;
  r.algorithm = spec.algorithm;
  return r;
}

/// Reduced coefficients of f(w) = S(q)(w) - S(t)(w) (see rdominance.cc).
void DiffScore(const Vec& q, const Vec& t, Vec* coef, Scalar* offset) {
  const int d = static_cast<int>(q.size());
  coef->resize(d - 1);
  *offset = q[d - 1] - t[d - 1];
  for (int i = 0; i < d - 1; ++i)
    (*coef)[i] = (q[i] - q[d - 1]) - (t[i] - t[d - 1]);
}

/// Remaps sorted ascending ids through the monotonic compact -> live map;
/// monotonicity keeps the output sorted.
void MapIds(const std::vector<int32_t>& live_ids, std::vector<int32_t>* ids) {
  for (int32_t& id : *ids) id = live_ids[id];
}

}  // namespace

LiveEngine::LiveEngine(Dataset data, LiveConfig config)
    : config_(config),
      data_(std::move(data)),
      alive_(data_.size(), 1),
      tree_(RTree::BulkLoad(data_)),
      cols_(data_),
      band_(std::max(config.band_k, 1), config.band_slack) {
  live_.store(static_cast<int64_t>(data_.size()), std::memory_order_relaxed);
  band_.Rebuild(data_, tree_);
}

LiveEngine::LiveEngine(Dataset data, std::vector<char> alive, RTree tree,
                       uint64_t epoch, LiveConfig config)
    : config_(config),
      data_(std::move(data)),
      alive_(std::move(alive)),
      tree_(std::move(tree)),
      cols_(data_),
      band_(std::max(config.band_k, 1), config.band_slack) {
  assert(alive_.size() == data_.size());
  int64_t live = 0;
  for (char a : alive_) live += a ? 1 : 0;
  assert(tree_.num_records() == live);
  live_.store(live, std::memory_order_relaxed);
  epoch_.store(epoch, std::memory_order_relaxed);
  // The band rebuild walks the tree, which indexes only alive records, so a
  // recovered engine tracks exactly the band a never-restarted one would.
  band_.Rebuild(data_, tree_);
}

LiveEngine::~LiveEngine() = default;

// --------------------------------------------------------------- planning

PlanDecision LiveEngine::DecideLocked(const QuerySpec& spec) const {
  // Plan against the number of LIVE records, so a live engine and a
  // from-scratch Engine over the compacted catalog choose identically.
  return DecidePlan(model_.get(), spec, live_size(), pref_dim());
}

Algorithm LiveEngine::PlanLocked(const QuerySpec& spec) const {
  return DecideLocked(spec).algorithm;
}

Algorithm LiveEngine::Plan(const QuerySpec& spec) const {
  ReaderLock lock(mu_);
  return PlanLocked(spec);
}

std::optional<std::string> LiveEngine::ValidateLocked(
    const QuerySpec& spec) const {
  // Mirrors Engine::Validate verbatim so the serving layer surfaces
  // identical diagnostics whichever engine backs it.
  if (live_size() == 0) return "engine holds an empty dataset";
  if (spec.k < 1) return "k must be >= 1";
  if (spec.region.dim() != pref_dim())
    return "region has " + std::to_string(spec.region.dim()) +
           " preference dims, dataset needs " + std::to_string(pref_dim());
  if (!spec.region.HasInteriorPoint())
    return "query region has empty interior";
  const Algorithm algo = PlanLocked(spec);
  if (spec.mode == QueryMode::kUtk2 &&
      (algo == Algorithm::kRsa || algo == Algorithm::kNaive))
    return std::string(AlgorithmName(algo)) +
           " answers UTK1 only; use JAA or a baseline for UTK2";
  return std::nullopt;
}

std::optional<std::string> LiveEngine::Validate(const QuerySpec& spec) const {
  ReaderLock lock(mu_);
  return ValidateLocked(spec);
}

// ---------------------------------------------------------------- queries

QueryResult LiveEngine::RunBandPipeline(const QuerySpec& spec,
                                        Algorithm algo) const {
  Timer timer;
  QueryResult r;
  r.mode = spec.mode;
  r.algorithm = algo;

  QueryStats filter_stats;
  RSkybandResult band;
  if (spec.k <= band_.k()) {
    // The maintained band is a superset of the r-skyband for every region
    // and every k <= band_k (live_band.h), so refiltering it within itself
    // is exactly the partitioned engine's pool argument.
    band = ComputeRSkybandFromPool(data_, band_.BandIds(), spec.region,
                                   spec.k, &filter_stats, &cols_);
    pool_queries_.fetch_add(1, std::memory_order_relaxed);
  } else {
    band = ComputeRSkyband(data_, tree_, spec.region, spec.k, &filter_stats,
                           &cols_);
    direct_queries_.fetch_add(1, std::memory_order_relaxed);
  }

  if (algo == Algorithm::kRsa) {
    Rsa::Options opt;
    opt.use_drill = spec.use_drill;
    opt.use_lemma1 = spec.use_lemma1;
    opt.wave_cap = spec.wave_cap;
    opt.refine_threads = spec.refine_threads;
    Utk1Result res = Rsa(opt).RunFiltered(data_, band, spec.region, spec.k);
    r.ids = std::move(res.ids);
    r.stats = res.stats;
  } else {
    Jaa::Options opt;
    opt.use_lemma1 = spec.use_lemma1;
    opt.wave_cap = spec.wave_cap;
    opt.refine_threads = spec.refine_threads;
    r.utk2 = Jaa(opt).RunFiltered(data_, band, spec.region, spec.k);
    r.ids = r.utk2.AllRecords();
    r.stats = r.utk2.stats;
  }
  const int64_t candidates = r.stats.candidates;
  r.stats += filter_stats;
  r.stats.candidates = candidates;  // refinement input, as Engine reports
  r.stats.elapsed_ms = timer.ElapsedMs();
  r.ok = true;
  return r;
}

QueryResult LiveEngine::RunViaCompact(const QuerySpec& spec) const {
  fallback_queries_.fetch_add(1, std::memory_order_relaxed);
  std::shared_ptr<const Engine> compact = EnsureCompact();
  std::vector<int32_t> live_ids;
  {
    MutexLock lock(compact_mu_);
    live_ids = compact_ids_;
  }
  QueryResult r = compact->Run(spec);
  if (!r.ok) return r;
  // Map every compact id back to its live id. The map is strictly
  // increasing, so sorted id lists, per-cell top-k sets, and the canonical
  // cell order (lexicographic in topk) all survive the translation.
  MapIds(live_ids, &r.ids);
  for (Utk2Cell& cell : r.utk2.cells) MapIds(live_ids, &cell.topk);
  for (auto& rec : r.per_record.records) rec.id = live_ids[rec.id];
  return r;
}

QueryResult LiveEngine::Run(const QuerySpec& spec) const {
  UTK_SPAN("live.run");
  QueryHistoryScope history;
  ReaderLock lock(mu_);
  if (std::optional<std::string> error = ValidateLocked(spec))
    return Fail(spec, std::move(*error));
  const PlanDecision decision = DecideLocked(spec);
  const Algorithm algo = decision.algorithm;
  QueryResult r = (algo == Algorithm::kRsa || algo == Algorithm::kJaa)
                      ? RunBandPipeline(spec, algo)
                      : RunViaCompact(spec);
  r.stats.epoch = static_cast<int64_t>(epoch());
  r.stats.planned_algorithm = static_cast<int64_t>(algo);
  r.stats.plan_reason = static_cast<int64_t>(decision.reason);
  NotePlanOutcome(decision, r.stats.elapsed_ms);
  history.Record(spec, r, live_size(), pref_dim());
  return r;
}

PlanNode LiveEngine::Explain(const QuerySpec& spec) const {
  ReaderLock lock(mu_);
  PlanNode root;
  root.op = "live.run";
  if (std::optional<std::string> error = ValidateLocked(spec)) {
    root.detail = "invalid: " + *error;
    return root;
  }
  const PlanDecision d = DecideLocked(spec);
  root.detail = PlanDetail(d, spec.k, live_size());
  root.est_ms = d.est_ms;
  if (d.algorithm == Algorithm::kRsa || d.algorithm == Algorithm::kJaa) {
    root.detail += spec.k <= band_.k() ? " path=band-pool" : " path=direct";
    root.children = AlgorithmPlanChildren(d.algorithm, spec.mode, live_size(),
                                          spec.k, pref_dim());
  } else {
    // Baselines and the naive oracle run on the compact fallback engine:
    // the executed tree roots at engine.run under live.run.
    PlanNode compact;
    compact.op = "engine.run";
    compact.detail = "compact fallback snapshot";
    compact.children = AlgorithmPlanChildren(d.algorithm, spec.mode,
                                             live_size(), spec.k, pref_dim());
    root.children.push_back(std::move(compact));
  }
  return root;
}

std::vector<int32_t> LiveEngine::TopK(const Vec& w, int k) const {
  ReaderLock lock(mu_);
  return TopKRTree(data_, tree_, w, k, nullptr, &cols_);
}

bool LiveEngine::IsLive(int32_t id) const {
  ReaderLock lock(mu_);
  return id >= 0 && id < static_cast<int32_t>(alive_.size()) &&
         alive_[id] != 0;
}

Dataset LiveEngine::CompactSnapshotLocked(
    std::vector<int32_t>* live_ids) const {
  Dataset compact;
  compact.reserve(static_cast<size_t>(live_.load(std::memory_order_relaxed)));
  if (live_ids != nullptr) live_ids->clear();
  for (size_t i = 0; i < data_.size(); ++i) {
    if (!alive_[i]) continue;
    Record r = data_[i];
    r.id = static_cast<int32_t>(compact.size());
    compact.push_back(std::move(r));
    if (live_ids != nullptr)
      live_ids->push_back(static_cast<int32_t>(i));
  }
  return compact;
}

Dataset LiveEngine::CompactSnapshot(std::vector<int32_t>* live_ids) const {
  ReaderLock lock(mu_);
  return CompactSnapshotLocked(live_ids);
}

std::shared_ptr<const Engine> LiveEngine::EnsureCompact() const {
  MutexLock lock(compact_mu_);
  const uint64_t now = epoch();
  if (compact_ == nullptr || compact_epoch_ != now) {
    std::vector<int32_t> live_ids;
    Dataset compact = CompactSnapshotLocked(&live_ids);
    compact_ = std::make_shared<const Engine>(std::move(compact));
    compact_ids_ = std::move(live_ids);
    compact_epoch_ = now;
  }
  return compact_;
}

// ---------------------------------------------------------------- updates

int32_t LiveEngine::InsertLocked(Record rec, UpdateEvent* event) {
  const int32_t n = static_cast<int32_t>(data_.size());
  if (rec.id > n) return -1;  // ids are assigned densely, no gaps
  if (!data_.empty() && rec.Dim() != dim()) return -1;
  int32_t id = rec.id;
  if (id == n || id < 0) {
    id = n;
    rec.id = id;
    data_.push_back(std::move(rec));
    alive_.push_back(1);
  } else {
    if (alive_[id]) return -1;  // live ids are never overwritten
    rec.id = id;
    data_[id] = std::move(rec);
    alive_[id] = 1;
  }
  // Keep the SoA mirror in lockstep (append or overwrite the tombstone's
  // row) before any index reads the new record.
  cols_.SetRow(id, data_[id].attrs);
  tree_.Insert(data_, id);
  band_.Insert(data_, tree_, id);
  live_.fetch_add(1, std::memory_order_release);
  inserts_.fetch_add(1, std::memory_order_relaxed);
  event->inserted.push_back(data_[id]);
  UpdateOp op;
  op.kind = UpdateKind::kInsert;
  op.record = data_[id];  // assigned id recorded, so replay is id-exact
  op.id = id;
  event->ops.push_back(std::move(op));
  return id;
}

bool LiveEngine::EraseLocked(int32_t id, UpdateEvent* event) {
  if (id < 0 || id >= static_cast<int32_t>(alive_.size()) || !alive_[id])
    return false;
  // Band first (it reads the record against the pre-delete tracked set),
  // then the tree; the tombstone keeps the attributes so invalidation
  // predicates and revivals can still read them.
  const bool incremental = band_.Erase(data_, id);
  tree_.Erase(data_, id);
  alive_[id] = 0;
  if (!incremental) band_.Rebuild(data_, tree_);  // deletion budget spent
  live_.fetch_sub(1, std::memory_order_release);
  erases_.fetch_add(1, std::memory_order_relaxed);
  event->erased.push_back(id);
  UpdateOp op;
  op.kind = UpdateKind::kErase;
  op.id = id;
  event->ops.push_back(std::move(op));
  return true;
}

int32_t LiveEngine::Insert(Record rec) {
  WriterLock lock(mu_);
  UpdateEvent event;
  const int32_t id = InsertLocked(std::move(rec), &event);
  if (id >= 0) Commit(event);
  return id;
}

bool LiveEngine::Erase(int32_t id) {
  WriterLock lock(mu_);
  UpdateEvent event;
  const bool ok = EraseLocked(id, &event);
  if (ok) Commit(event);
  return ok;
}

int LiveEngine::ApplyBatch(std::span<const UpdateOp> ops) {
  UTK_SPAN_VAL("live.apply_batch", static_cast<int64_t>(ops.size()));
  WriterLock lock(mu_);
  UpdateEvent event;
  int applied = 0;
  for (const UpdateOp& op : ops) {
    if (op.kind == UpdateKind::kInsert) {
      if (InsertLocked(op.record, &event) >= 0) ++applied;
    } else {
      if (EraseLocked(op.id, &event)) ++applied;
    }
  }
  if (applied > 0) Commit(event);
  return applied;
}

// ---------------------------------------------------------------- serving

void LiveEngine::AttachCache(ResultCache* cache) {
  MutexLock lock(caches_mu_);
  if (std::find(caches_.begin(), caches_.end(), cache) == caches_.end())
    caches_.push_back(cache);
}

void LiveEngine::DetachCache(ResultCache* cache) {
  MutexLock lock(caches_mu_);
  caches_.erase(std::remove(caches_.begin(), caches_.end(), cache),
                caches_.end());
}

bool LiveEngine::CouldAffect(const UpdateEvent& event,
                             const CacheEntryView& view) const {
  // An empty UTK1 answer should never have been cached; drop defensively.
  if (view.result.ids.empty()) return true;
  // Erase: removing a record changes some top-k over R iff it was IN some
  // top-k over R — exactly membership in the cached UTK1 id set.
  for (int32_t id : event.erased) {
    if (std::binary_search(view.result.ids.begin(), view.result.ids.end(),
                           id))
      return true;
  }
  // Insert: if the new record is outscored by every cached answer member
  // everywhere in R, it cannot displace any top-k (the old top-k at each w
  // in R is a subset of the cached ids), so the entry stands. Otherwise be
  // conservative. One affine range per (record, cached id) — closed form
  // for box regions.
  Vec coef;
  Scalar offset;
  for (const Record& q : event.inserted) {
    for (int32_t t : view.result.ids) {
      DiffScore(q.attrs, data_[t].attrs, &coef, &offset);
      auto range = view.region.RangeOf(coef, offset);
      if (!range.has_value() || range->second >= -kEps) return true;
    }
  }
  return false;
}

void LiveEngine::Commit(const UpdateEvent& event) {
  UTK_SPAN_VAL("live.commit", static_cast<int64_t>(event.ops.size()));
  Timer timer;
  const uint64_t from = epoch_.load(std::memory_order_relaxed);
  const uint64_t to = from + 1;
  epoch_.store(to, std::memory_order_release);
  // Durability first: the WAL records the batch before any reader can act
  // on the new epoch through a cache sweep.
  {
    MutexLock lock(logs_mu_);
    if (!logs_.empty()) {
      const CatalogView view{data_, alive_, tree_, to};
      for (UpdateLog* log : logs_) log->OnCommit(event.ops, view);
    }
  }
  {
    UTK_SPAN("live.cache_sweep");
    MutexLock lock(caches_mu_);
    for (ResultCache* cache : caches_) {
      cache->ApplyInvalidation(from, to, [&](const CacheEntryView& view) {
        return CouldAffect(event, view);
      });
    }
  }
  auto& reg = obs::MetricRegistry::Global();
  static obs::Counter& commits = reg.GetCounter("utk_live_commits_total");
  static obs::Counter& inserts = reg.GetCounter("utk_live_inserts_total");
  static obs::Counter& erases = reg.GetCounter("utk_live_erases_total");
  static obs::Histogram& latency =
      reg.GetHistogram("utk_live_commit_latency_us");
  commits.Add();
  inserts.Add(static_cast<int64_t>(event.inserted.size()));
  erases.Add(static_cast<int64_t>(event.erased.size()));
  latency.Observe(static_cast<int64_t>(timer.ElapsedMs() * 1000.0));
}

void LiveEngine::AttachLog(UpdateLog* log) {
  MutexLock lock(logs_mu_);
  if (std::find(logs_.begin(), logs_.end(), log) == logs_.end())
    logs_.push_back(log);
}

void LiveEngine::DetachLog(UpdateLog* log) {
  MutexLock lock(logs_mu_);
  logs_.erase(std::remove(logs_.begin(), logs_.end(), log), logs_.end());
}

void LiveEngine::WithSnapshot(
    const std::function<void(const CatalogView&)>& fn) const {
  ReaderLock lock(mu_);
  fn(CatalogView{data_, alive_, tree_, epoch()});
}

LiveCounters LiveEngine::counters() const {
  ReaderLock lock(mu_);
  LiveCounters c;
  c.epoch = epoch();
  c.live = live_size();
  c.inserts = inserts_.load(std::memory_order_relaxed);
  c.erases = erases_.load(std::memory_order_relaxed);
  c.band = band_.band_size();
  c.band_rebuilds = band_.rebuilds();
  c.pool_queries = pool_queries_.load(std::memory_order_relaxed);
  c.direct_queries = direct_queries_.load(std::memory_order_relaxed);
  c.fallback_queries = fallback_queries_.load(std::memory_order_relaxed);
  return c;
}

}  // namespace utk
