// LiveEngine — the QueryEngine over a mutating catalog.
//
// The paper's algorithms assume a frozen dataset; this engine lets the
// catalog mutate. It owns an epoch-versioned dataset addressed by *stable*
// record ids: erased slots become tombstones (attributes kept, excluded
// from every index), inserts take the next id or revive a tombstone. Each
// committed update batch advances the epoch and incrementally maintains
//
//   * the R-tree (index/rtree.h Insert/Erase — no bulk rebuild), and
//   * the r-skyband superset band (skyline/live_band.h): an insert can only
//     add itself or demote band members it strongly dominates; a delete can
//     only promote records it shielded. Bounded dominated-by counters keep
//     both updates O(band); when the deletion budget saturates the band is
//     rebuilt from the tree (the counters' exactness bound — see
//     live_band.h — is what makes everything in between sound).
//
// Queries answer over the live structures. RSA/JAA specs with k <= band_k
// refine the maintained band through the exact machinery the partitioned
// engine already trusts (ComputeRSkybandFromPool + RunFiltered), larger k
// filters the live R-tree directly, and algorithms outside the r-skyband
// pipeline (naive oracle, SK/ON baselines) run on a lazily rebuilt compact
// engine with answers mapped back to live ids — every path returns exactly
// what a from-scratch Engine over the current live records would (modulo
// the id compaction, which the compact path maps through monotonically).
//
// Serving contract: every committed epoch emits an invalidation sweep to
// each attached serve::ResultCache (ApplyInvalidation) with a conservative
// predicate — an erase affects exactly the entries whose UTK1 answer
// contains the erased id; an insert affects the entries where the new
// record ties-or-beats some answer member somewhere in the entry's region
// (an affine range test per cached id; closed form for boxes). Entries
// proven unaffected are re-tagged to the new epoch and keep serving;
// affected ones are dropped, so a warm Server over a LiveEngine always
// equals a cold one.
//
// Thread-safety: queries (Run/TopK/Plan/Validate) take a shared lock and
// may run concurrently; updates take the exclusive lock and commit their
// cache sweeps before releasing it. data() references are only stable
// while no update runs.
#ifndef UTK_LIVE_LIVE_ENGINE_H_
#define UTK_LIVE_LIVE_ENGINE_H_

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "api/engine.h"
#include "common/annotations.h"
#include "api/query_engine.h"
#include "data/workload.h"
#include "exec/column_store.h"
#include "index/rtree.h"
#include "serve/result_cache.h"
#include "skyline/live_band.h"

namespace utk {

/// Live-update knobs.
struct LiveConfig {
  /// Largest query k the maintained band can answer (larger k falls back to
  /// filtering the live R-tree directly — still exact, just not O(band)).
  int band_k = 16;
  /// Deletions absorbed between band rebuilds (live_band.h slack).
  int band_slack = 16;
};

/// Read-only view of the complete catalog state, valid only for the duration
/// of the call it is passed to (the references alias engine internals under
/// the engine's lock). `data`/`alive` are id-addressed including tombstones;
/// `tree` indexes exactly the alive records; `epoch` is the committed batch
/// count the state corresponds to.
struct CatalogView {
  const Dataset& data;
  const std::vector<char>& alive;
  const RTree& tree;
  uint64_t epoch = 0;
};

/// Durability hook: observes every committed update batch, synchronously,
/// under the engine's exclusive lock. `ops` lists the batch's *applied*
/// mutations in application order with their assigned ids (order matters:
/// one batch may erase an id and then revive it), so replaying the stream
/// through ApplyBatch on the view's predecessor state reproduces `view`
/// exactly — this is the write-ahead-log contract src/storage/ builds on.
/// OnCommit runs before the update call returns; it may read the view but
/// must not call back into the engine (the exclusive lock is held).
class UpdateLog {
 public:
  virtual ~UpdateLog() = default;
  virtual void OnCommit(std::span<const UpdateOp> ops,
                        const CatalogView& view) = 0;
};

/// Monotonic update-side counters (a consistent snapshot via counters()).
struct LiveCounters {
  uint64_t epoch = 0;        ///< committed update batches
  int64_t live = 0;          ///< records currently alive
  int64_t inserts = 0;       ///< records inserted (including revivals)
  int64_t erases = 0;        ///< records erased
  int64_t band = 0;          ///< current band size
  int64_t band_rebuilds = 0; ///< counter-saturation (and initial) rebuilds
  int64_t pool_queries = 0;  ///< queries answered from the maintained band
  int64_t direct_queries = 0;   ///< k > band_k: filtered the live tree
  int64_t fallback_queries = 0; ///< answered via the compact fallback engine
};

class LiveEngine final : public QueryEngine {
 public:
  /// Takes ownership of `data` (ids 0..n-1, the repo invariant) as epoch 0.
  /// An empty dataset is a valid start — build the catalog with Insert.
  explicit LiveEngine(Dataset data, LiveConfig config = {});

  /// Recovery constructor (src/storage/catalog.cc): resumes a persisted
  /// catalog mid-history. `data`/`alive` are the id-addressed state
  /// including tombstones, `tree` must index exactly the alive records
  /// (deserialized from a segment, or RTree::BulkLoad(data, alive)), and
  /// `epoch` is the committed batch count the state was saved at — the
  /// engine continues from there as if it had applied those batches itself.
  LiveEngine(Dataset data, std::vector<char> alive, RTree tree,
             uint64_t epoch, LiveConfig config = {});

  ~LiveEngine() override;

  LiveEngine(const LiveEngine&) = delete;
  LiveEngine& operator=(const LiveEngine&) = delete;

  using QueryEngine::Run;

  // ------------------------------------------------------------- queries
  /// The id-addressed dataset *including tombstones* (data()[i].id == i
  /// still holds; IsLive distinguishes). Algorithms only dereference ids
  /// the live indexes hand out, so tombstones are never touched.
  /// Unchecked by the thread-safety analysis: the reference is handed out
  /// lock-free by contract — stable only while no update runs (class
  /// comment); synchronized callers go through WithSnapshot.
  const Dataset& data() const override UTK_NO_THREAD_SAFETY_ANALYSIS {
    return data_;
  }
  /// The SoA mirror of data() — maintained incrementally in lockstep with
  /// the catalog (SetRow on every insert/revival; tombstones keep their
  /// last attributes, same as data()). Stable only while no update runs;
  /// same lock-free-by-contract escape hatch as data().
  const ColumnStore& cols() const UTK_NO_THREAD_SAFETY_ANALYSIS {
    return cols_;
  }
  Algorithm Plan(const QuerySpec& spec) const override;
  std::optional<std::string> Validate(const QuerySpec& spec) const override;
  QueryResult Run(const QuerySpec& spec) const override;
  /// EXPLAIN: live.run over the band pipeline's filter/refine subtree for
  /// RSA/JAA plans; for baseline/naive plans the compact-fallback engine.run
  /// subtree the query would actually execute.
  PlanNode Explain(const QuerySpec& spec) const override;
  std::vector<int32_t> TopK(const Vec& w, int k) const override;
  uint64_t epoch() const override {
    return epoch_.load(std::memory_order_acquire);
  }

  // ------------------------------------------------------------- updates
  /// Inserts `rec` and commits an epoch. rec.id == -1 assigns the next id;
  /// a tombstoned id revives that slot (the reinsert path). Returns the
  /// record's id, or -1 when the id is already live, out of range, or the
  /// attribute dimensionality mismatches.
  int32_t Insert(Record rec);

  /// Erases a live record and commits an epoch. Returns false for unknown
  /// or already-dead ids (no epoch is committed then).
  bool Erase(int32_t id);

  /// Applies a whole trace as ONE committed epoch (one invalidation sweep
  /// covering every op). Returns the number of ops applied; invalid ops are
  /// skipped. An all-invalid batch commits no epoch.
  int ApplyBatch(std::span<const UpdateOp> ops);

  bool IsLive(int32_t id) const;
  int64_t live_size() const { return live_.load(std::memory_order_acquire); }

  /// The live records re-indexed 0..m-1 in ascending live-id order — what a
  /// from-scratch Engine would be built on. live_ids (optional) receives
  /// the monotonic new-id -> live-id mapping.
  Dataset CompactSnapshot(std::vector<int32_t>* live_ids = nullptr) const;

  // ------------------------------------------------------------- serving
  /// Registers `cache` for epoch invalidation sweeps: every committed
  /// update batch calls cache->ApplyInvalidation before the update returns.
  /// The cache must stay alive until DetachCache (see CacheAttachment).
  void AttachCache(ResultCache* cache);
  void DetachCache(ResultCache* cache);

  // --------------------------------------------------------- persistence
  /// Registers `log` to observe every committed batch (see UpdateLog). The
  /// log must stay alive until DetachLog. Updates committed before the
  /// attach are not replayed — attach before mutating (the storage catalog
  /// attaches its WAL right after recovery, while it holds the only
  /// reference to the engine).
  void AttachLog(UpdateLog* log);
  void DetachLog(UpdateLog* log);

  /// Runs `fn` over a consistent snapshot of the full catalog state, with
  /// updates blocked for the duration (shared lock — concurrent queries
  /// proceed). The storage tier's explicit compaction uses this to write a
  /// segment + rotate the WAL atomically with respect to commits. `fn` must
  /// not call the engine's update methods (self-deadlock on the lock).
  void WithSnapshot(const std::function<void(const CatalogView&)>& fn) const;

  LiveCounters counters() const;
  const LiveConfig& config() const { return config_; }

 private:
  struct UpdateEvent {
    std::vector<Record> inserted;
    std::vector<int32_t> erased;
    /// Applied mutations in application order, assigned ids filled in —
    /// exactly what UpdateLog::OnCommit receives.
    std::vector<UpdateOp> ops;
  };

  /// Lock-free cores of Plan/Validate for callers already under mu_.
  PlanDecision DecideLocked(const QuerySpec& spec) const
      UTK_REQUIRES_SHARED(mu_);
  Algorithm PlanLocked(const QuerySpec& spec) const UTK_REQUIRES_SHARED(mu_);
  std::optional<std::string> ValidateLocked(const QuerySpec& spec) const
      UTK_REQUIRES_SHARED(mu_);
  /// Un-synchronized cores of Insert/Erase; the caller holds the exclusive
  /// lock and owns the commit.
  int32_t InsertLocked(Record rec, UpdateEvent* event) UTK_REQUIRES(mu_);
  bool EraseLocked(int32_t id, UpdateEvent* event) UTK_REQUIRES(mu_);
  /// Advances the epoch and sweeps every attached cache with the
  /// conservative could-affect predicate for `event`. Exclusive lock held.
  void Commit(const UpdateEvent& event) UTK_REQUIRES(mu_);
  /// True iff `event` could change the cached answer `view` (see class
  /// comment for the exact tests). Runs under Commit's exclusive lock, but
  /// reaches here through the std::function invalidation predicate — a
  /// boundary the analysis cannot see capabilities across, hence the
  /// explicit opt-out.
  bool CouldAffect(const UpdateEvent& event, const CacheEntryView& view) const
      UTK_NO_THREAD_SAFETY_ANALYSIS;

  Dataset CompactSnapshotLocked(std::vector<int32_t>* live_ids) const
      UTK_REQUIRES_SHARED(mu_);
  /// The compact fallback engine for the current epoch (rebuilt at most
  /// once per epoch, under compact_mu_). Shared lock on mu_ held.
  std::shared_ptr<const Engine> EnsureCompact() const
      UTK_REQUIRES_SHARED(mu_);
  QueryResult RunViaCompact(const QuerySpec& spec) const
      UTK_REQUIRES_SHARED(mu_);
  QueryResult RunBandPipeline(const QuerySpec& spec, Algorithm algo) const
      UTK_REQUIRES_SHARED(mu_);

  LiveConfig config_;
  /// Cost model captured at construction (DefaultCostModel()); immutable
  /// afterwards, so DecideLocked needs no extra synchronization.
  std::shared_ptr<const CostModel> model_ = DefaultCostModel();
  /// Catalog lock. Lock order: mu_ strictly before logs_mu_, caches_mu_,
  /// and compact_mu_ (Commit and the compact-fallback path) — and, through
  /// UpdateLog::OnCommit, before the storage Catalog's cat_mu_.
  mutable SharedMutex mu_ UTK_ACQUIRED_BEFORE(logs_mu_, caches_mu_,
                                              compact_mu_);
  Dataset data_ UTK_GUARDED_BY(mu_);
  std::vector<char> alive_ UTK_GUARDED_BY(mu_);
  RTree tree_ UTK_GUARDED_BY(mu_);
  ColumnStore cols_ UTK_GUARDED_BY(mu_);
  LiveSkyband band_ UTK_GUARDED_BY(mu_);
  std::atomic<uint64_t> epoch_{0};
  std::atomic<int64_t> live_{0};
  std::atomic<int64_t> inserts_{0};
  std::atomic<int64_t> erases_{0};
  mutable std::atomic<int64_t> pool_queries_{0};
  mutable std::atomic<int64_t> direct_queries_{0};
  mutable std::atomic<int64_t> fallback_queries_{0};

  Mutex caches_mu_;
  std::vector<ResultCache*> caches_ UTK_GUARDED_BY(caches_mu_);

  Mutex logs_mu_;
  std::vector<UpdateLog*> logs_ UTK_GUARDED_BY(logs_mu_);

  mutable Mutex compact_mu_;
  mutable std::shared_ptr<const Engine> compact_ UTK_GUARDED_BY(compact_mu_);
  mutable std::vector<int32_t> compact_ids_ UTK_GUARDED_BY(compact_mu_);
  mutable uint64_t compact_epoch_ UTK_GUARDED_BY(compact_mu_) = ~0ull;
};

/// RAII pairing of a Server's cache with a LiveEngine's epoch sweeps:
///   Server server(live);            // live: shared_ptr<LiveEngine>
///   CacheAttachment link(*live, server.cache());
/// Detaches on destruction, so the cache can be destroyed safely.
class CacheAttachment {
 public:
  CacheAttachment(LiveEngine& live, ResultCache& cache)
      : live_(&live), cache_(&cache) {
    live_->AttachCache(cache_);
  }
  ~CacheAttachment() { live_->DetachCache(cache_); }
  CacheAttachment(const CacheAttachment&) = delete;
  CacheAttachment& operator=(const CacheAttachment&) = delete;

 private:
  LiveEngine* live_;
  ResultCache* cache_;
};

}  // namespace utk

#endif  // UTK_LIVE_LIVE_ENGINE_H_
