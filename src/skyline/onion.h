// Onion layers (Chang et al., described in Sections 2 and 3.3).
//
// Layer i comprises the records on the convex hull once layers 1..i-1 are
// peeled; since weights are positive, only hull facets with normals in the
// first quadrant matter (Section 3.3). We therefore test layer membership
// directly: record p is in the current layer iff some non-negative weight
// vector makes p score at least as high as every remaining record — a small
// margin-maximization LP. This replaces the qhull dependency the paper used
// while producing the same layers for linear scoring (see DESIGN.md §5).
//
// Following the paper's implementation note, layers are peeled off the
// k-skyband rather than the full dataset.
#ifndef UTK_SKYLINE_ONION_H_
#define UTK_SKYLINE_ONION_H_

#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "index/rtree.h"

namespace utk {

/// Computes the first `k` onion layers of `data`. layers[i] holds record ids
/// of layer i+1. Records beyond the k-skyband cannot appear in any of the
/// first k layers and are never considered.
std::vector<std::vector<int32_t>> OnionLayers(const Dataset& data,
                                              const RTree& tree, int k,
                                              QueryStats* stats = nullptr);

/// Convenience: flattens the k layers into one candidate list.
std::vector<int32_t> OnionCandidates(const Dataset& data, const RTree& tree,
                                     int k, QueryStats* stats = nullptr);

/// True iff some w >= 0 (not all zero, normalized to the simplex) gives `p`
/// a score >= that of every record in `others`. Exposed for testing.
bool IsFirstQuadrantHullMember(const Record& p,
                               const std::vector<const Record*>& others,
                               QueryStats* stats = nullptr);

/// The onion technique as an index (Chang et al. [13], Section 2): the
/// first k layers are materialized once; any top-k' query with k' <= k is
/// then answered by scanning only the union of the first k' layers, which
/// provably contains every top-k' set.
class OnionIndex {
 public:
  /// Materializes the first `max_k` layers.
  OnionIndex(const Dataset& data, const RTree& tree, int max_k,
             QueryStats* stats = nullptr);

  /// Top-k query (k <= max_k), best first, id tie-break as in TopK().
  std::vector<int32_t> Query(const Vec& w, int k) const;

  int max_k() const { return static_cast<int>(layers_.size()); }
  const std::vector<std::vector<int32_t>>& layers() const { return layers_; }
  /// Total records across the materialized layers.
  int64_t CandidateCount() const;

 private:
  const Dataset& data_;
  std::vector<std::vector<int32_t>> layers_;
};

}  // namespace utk

#endif  // UTK_SKYLINE_ONION_H_
