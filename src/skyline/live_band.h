// LiveSkyband — incrementally maintained r-skyband superset state for the
// live-update subsystem (src/live/).
//
// The state is a bounded dominated-by counter per record: count(p) = the
// number of live records that *strongly* dominate p (dominance.h,
// StronglyDominates with margin kEps), tracked exactly while it stays below
// cap = k + slack and abandoned ("saturated") once it reaches cap. The band
// is every record with count < k.
//
// Why strong dominance: a strong dominator r-dominates with respect to
// every query region inside the simplex, so a record with >= k strong
// dominators is outside the r-skyband of *any* (region R', k' <= k) query —
// the band is a provable superset of every such r-skyband, hence of every
// top-k set over any region. Queries refine it with the exact machinery the
// partitioned engine already trusts (ComputeRSkybandFromPool +
// Rsa/Jaa::RunFiltered), so band answers equal a from-scratch Engine run.
//
// Update costs and the saturation invariant:
//   * Insert(q): one capped dominator count for q over the R-tree, plus one
//     strong-dominance test per tracked record — O(band) state touched.
//     Tracked records that reach cap are dropped; untracked records only
//     gain dominators, so they stay correctly excluded.
//   * Erase(q): one strong-dominance test per tracked record, decrementing
//     the records q shielded. Tracked counts stay exact. An *untracked*
//     record had an exact count >= cap at the moment it saturated (after
//     the last rebuild), and every deletion since lowers any count by at
//     most 1 — so while deletes_since_rebuild <= slack, every untracked
//     record still has >= cap - slack = k dominators and remains correctly
//     outside the band. The slack+1-th delete would break that bound;
//     Erase then refuses (returns false) and the caller must Rebuild.
#ifndef UTK_SKYLINE_LIVE_BAND_H_
#define UTK_SKYLINE_LIVE_BAND_H_

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/types.h"
#include "index/rtree.h"

namespace utk {

class LiveSkyband {
 public:
  /// Counters track exactly up to cap() = k + slack; slack is the number of
  /// deletions absorbed between full rebuilds.
  explicit LiveSkyband(int k, int slack = 16);

  /// Recounts every record indexed by `tree` from scratch and resets the
  /// deletion budget. Also the initial-construction path.
  void Rebuild(const Dataset& data, const RTree& tree);

  /// Accounts for record `id`, which must already be in `data` and `tree`.
  void Insert(const Dataset& data, const RTree& tree, int32_t id);

  /// Accounts for the removal of record `id` (still present in `data`; may
  /// or may not still be in the tree). Returns false — leaving the state
  /// unchanged — when the deletion budget is exhausted and the caller must
  /// Rebuild against the post-delete tree.
  bool Erase(const Dataset& data, int32_t id);

  /// Record ids with fewer than k strong dominators, sorted ascending.
  std::vector<int32_t> BandIds() const;
  /// True iff `id` is currently in the band.
  bool Contains(int32_t id) const;

  int k() const { return k_; }
  int cap() const { return cap_; }
  /// Number of records with tracked (exact, < cap) counters.
  int64_t tracked() const { return static_cast<int64_t>(count_.size()); }
  /// Band size without materializing BandIds().
  int64_t band_size() const;
  int64_t rebuilds() const { return rebuilds_; }
  int deletes_since_rebuild() const { return deletes_since_rebuild_; }

 private:
  int k_;
  int cap_;
  int slack_;
  int deletes_since_rebuild_ = 0;
  int64_t rebuilds_ = 0;
  std::unordered_map<int32_t, int> count_;  ///< tracked: id -> exact count
};

/// Number of records in `tree` strongly dominating `rec`, counted exactly
/// until `cap` (then returns cap). `rec` itself is skipped when indexed.
int CountStrongDominators(const Dataset& data, const RTree& tree,
                          const Record& rec, int cap);

}  // namespace utk

#endif  // UTK_SKYLINE_LIVE_BAND_H_
