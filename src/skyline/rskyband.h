// r-skyband computation (Section 4.1): the filtering step shared by RSA and
// JAA. Adapted BBS over the R-tree with
//   * r-dominance instead of classic dominance, and
//   * a max-heap keyed by score at the pivot vector of R, which guides the
//     search to likely r-skyband members first.
//
// Correctness of the popping order: records come off the heap in decreasing
// pivot score. If q r-dominated an earlier-popped p, then S(q) >= S(p) on all
// of R with equality at the interior pivot, which forces S(q) == S(p) on all
// of R (an affine function that is non-negative on R and zero at an interior
// point is identically zero) — i.e. q does not r-dominate p. Hence all
// r-dominators of a record are already confirmed when it pops, which is also
// how the r-dominance graph is obtained for free.
#ifndef UTK_SKYLINE_RSKYBAND_H_
#define UTK_SKYLINE_RSKYBAND_H_

// Columnar execution: every entry point takes an optional ColumnStore
// (exec/column_store.h) mirroring `data`. When present — and it is for
// every engine-owned catalog and shard — leaf scans score through the
// batched ScoreBatch kernel and box-region r-dominance tests run through
// the allocation-free BoxGapEvaluator, both bit-for-bit equal to the AoS
// scalar path (tests/test_exec.cc). cols == nullptr keeps the original
// AoS loops, which the SoA-vs-AoS ablation benchmark compares against.

#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "exec/column_store.h"
#include "geometry/region.h"
#include "index/rtree.h"

namespace utk {

/// Output of the filtering step.
struct RSkybandResult {
  /// Record ids of r-skyband members, in decreasing pivot-score order.
  std::vector<int32_t> ids;
  /// dominators[i] = indices (into `ids`) of members that r-dominate ids[i].
  std::vector<std::vector<int>> dominators;
  /// The pivot vector of R used as the heap key.
  Vec pivot;
};

/// Computes the r-skyband of `data` w.r.t. region `r` and parameter `k`.
/// `cols`, when non-null, must mirror `data` row-for-row (stable ids).
RSkybandResult ComputeRSkyband(const Dataset& data, const RTree& tree,
                               const ConvexRegion& r, int k,
                               QueryStats* stats = nullptr,
                               const ColumnStore* cols = nullptr);

/// As above, with external `pruners`: records pre-confirmed for pruning
/// only — r-dominators found among them count toward the k threshold (for
/// both subtree and record pruning) but pruners are never emitted. The
/// output is {p in data : #r-dominators of p within data ∪ pruners < k}.
/// Pruners must not duplicate records of `data` (a duplicate would count
/// itself as its own dominator and over-prune). The partitioned engine
/// (src/dist/) seeds each shard's filter with globally strong records this
/// way, restoring global-strength pruning inside every shard.
RSkybandResult ComputeRSkyband(const Dataset& data, const RTree& tree,
                               const ConvexRegion& r, int k,
                               const std::vector<Record>& pruners,
                               QueryStats* stats = nullptr,
                               const ColumnStore* cols = nullptr);

/// The filtering step over an explicit candidate pool: `pool` record ids act
/// as both the candidates and the only competitors — no R-tree involved.
/// When the pool is a superset of every top-k set over `r` (e.g. the union
/// of per-shard r-skybands, see src/dist/), the output supports exactly the
/// same refinement as the global filter: members outside the global
/// r-skyband have >= k r-dominators inside the pool too and are pruned, and
/// every global r-skyband member survives. Candidates are processed in
/// decreasing pivot-score order (ties by id), which preserves the
/// dominators-confirmed-first invariant documented above, so the r-dominance
/// graph again falls out for free.
RSkybandResult ComputeRSkybandFromPool(const Dataset& data,
                                       std::vector<int32_t> pool,
                                       const ConvexRegion& r, int k,
                                       QueryStats* stats = nullptr,
                                       const ColumnStore* cols = nullptr);

/// Brute-force oracle (O(n^2) r-dominance tests), for tests.
std::vector<int32_t> RSkybandBruteForce(const Dataset& data,
                                        const ConvexRegion& r, int k);

}  // namespace utk

#endif  // UTK_SKYLINE_RSKYBAND_H_
