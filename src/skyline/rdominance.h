// r-dominance (Definition 1): record p r-dominates p' when S(p) >= S(p')
// for every weight vector in region R, with strict inequality somewhere.
//
// Deciding r-dominance reduces to the range of the affine function
// f(w) = S(p)(w) - S(p')(w) over R:
//   min f >= 0 and max f > 0   ->  p r-dominates p'
//   max f <= 0 and min f < 0   ->  p' r-dominates p
//   min f == max f == 0        ->  score-equal everywhere in R
//   otherwise                  ->  r-incomparable
// For axis-parallel boxes inside the simplex the range is a closed form over
// the box corners (the paper's vertex test); for general convex regions it is
// two LPs.
#ifndef UTK_SKYLINE_RDOMINANCE_H_
#define UTK_SKYLINE_RDOMINANCE_H_

#include "common/stats.h"
#include "geometry/region.h"
#include "index/rtree.h"

namespace utk {

enum class RDom {
  kDominates,     ///< p r-dominates q
  kDominatedBy,   ///< q r-dominates p
  kIncomparable,  ///< each scores higher somewhere in R
  kEqual,         ///< identical scores everywhere in R
};

/// Relation of p to q over region R.
RDom RDominance(const Record& p, const Record& q, const ConvexRegion& r,
                QueryStats* stats = nullptr);

/// Classifies a score-difference range [lo, hi] = range of S(p) - S(q)
/// over R into the four RDom outcomes. This is the single classification
/// rule: RDominance() routes through it, and so does the columnar filter
/// path (exec/kernels.h BoxGapEvaluator), so AoS and SoA execution agree
/// bit-for-bit.
RDom ClassifyScoreRange(Scalar lo, Scalar hi);

/// True iff the record with attribute vector `p_top` (typically an MBB top
/// corner) scores >= `q` everywhere in R... i.e. whether `q` r-dominates the
/// *optimistic* representative of a subtree. Used for node pruning in the
/// r-skyband BBS: a node can be pruned once k confirmed members r-dominate
/// its top corner.
bool RDominatesCorner(const Record& q, const Vec& corner,
                      const ConvexRegion& r, QueryStats* stats = nullptr);

}  // namespace utk

#endif  // UTK_SKYLINE_RDOMINANCE_H_
