// BBS k-skyband computation (Papadias et al., described in Section 2).
//
// Branch-and-bound over the R-tree with a max-heap keyed by a monotone
// metric (here: sum of top-corner coordinates). A record enters the skyband
// if fewer than k current members dominate it; an index node is expanded if
// its top corner is dominated by fewer than k members.
#ifndef UTK_SKYLINE_SKYBAND_H_
#define UTK_SKYLINE_SKYBAND_H_

#include <vector>

#include "common/stats.h"
#include "common/types.h"
#include "exec/column_store.h"
#include "index/rtree.h"

namespace utk {

/// Computes the k-skyband of `data` using BBS over `tree`.
/// Returns record ids in the order BBS confirmed them. `cols`, when
/// non-null, must mirror `data`; the dominated-count probes then run the
/// batched CountDominatorsOfPoint kernel over the confirmed members
/// (bit-identical either way). Heap keys stay scalar — SumCoords per
/// popped entry is not a hot loop.
std::vector<int32_t> KSkyband(const Dataset& data, const RTree& tree, int k,
                              QueryStats* stats = nullptr,
                              const ColumnStore* cols = nullptr);

/// Brute-force k-skyband (O(n^2)), used as a test oracle.
std::vector<int32_t> KSkybandBruteForce(const Dataset& data, int k);

}  // namespace utk

#endif  // UTK_SKYLINE_SKYBAND_H_
