// The r-dominance graph G (Section 4.1): a DAG over r-skyband candidates
// where an arc p -> p' records that p r-dominates p'.
//
// Nodes are candidate indices (positions in RSkybandResult::ids). Because
// BBS confirms records in decreasing pivot-score order, every arc points
// from a smaller index to a larger one, i.e. insertion order is a
// topological order — which makes ancestor/descendant bitsets one linear
// pass each. RSA removes disqualified candidates from the graph; queries
// against the graph always intersect with the active-node mask.
#ifndef UTK_SKYLINE_GRAPH_H_
#define UTK_SKYLINE_GRAPH_H_

#include <vector>

#include "common/bitset.h"
#include "common/types.h"
#include "skyline/rskyband.h"

namespace utk {

class RDominanceGraph {
 public:
  /// Builds the graph from the filtering-step output.
  static RDominanceGraph Build(const RSkybandResult& band);

  int size() const { return n_; }

  /// Direct arcs discovered during filtering (may include transitively
  /// implied arcs; they are harmless and deduplicated at traversal time).
  const std::vector<int>& Parents(int i) const { return parents_[i]; }
  const std::vector<int>& Children(int i) const { return children_[i]; }

  /// All (transitive) r-dominators of node i, as a bitset over nodes.
  const Bitset& Ancestors(int i) const { return ancestors_[i]; }
  /// All (transitive) r-dominees of node i.
  const Bitset& Descendants(int i) const { return descendants_[i]; }

  /// Nodes not removed by RSA disqualification.
  const Bitset& Active() const { return active_; }
  bool IsActive(int i) const { return active_.Test(i); }
  void Remove(int i) { active_.Reset(i); }

  /// r-dominance count of node i among active nodes, ignoring `ignored`.
  int DomCount(int i, const Bitset& ignored) const {
    return ancestors_[i].CountAndAndNot(active_, ignored);
  }
  /// r-dominance count among active nodes only.
  int DomCount(int i) const { return ancestors_[i].CountAnd(active_); }

 private:
  int n_ = 0;
  std::vector<std::vector<int>> parents_, children_;
  std::vector<Bitset> ancestors_, descendants_;
  Bitset active_;
};

}  // namespace utk

#endif  // UTK_SKYLINE_GRAPH_H_
