#include "skyline/skyband.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "exec/kernels.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "skyline/dominance.h"

namespace utk {

namespace {

struct HeapEntry {
  Scalar key;
  bool is_record;
  int32_t id;  // record id or node id
  bool operator<(const HeapEntry& o) const { return key < o.key; }
};

Scalar SumCoords(const Vec& v) {
  return std::accumulate(v.begin(), v.end(), Scalar{0});
}

}  // namespace

std::vector<int32_t> KSkyband(const Dataset& data, const RTree& tree, int k,
                              QueryStats* stats, const ColumnStore* cols) {
  UTK_SPAN("filter.skyband");
  std::vector<int32_t> band;
  if (tree.empty()) return band;
  const bool soa = cols != nullptr && !cols->empty();

  std::priority_queue<HeapEntry> heap;
  heap.push({SumCoords(tree.node(tree.root()).mbb.TopCorner()), false,
             tree.root()});

  static obs::Counter& probes = obs::MetricRegistry::Global().GetCounter(
      "utk_skyband_membership_probes_total");
  auto dominated_count_reaches_k = [&](const Vec& v) {
    probes.Add();
    if (soa) return CountDominatorsOfPoint(*cols, band, v, k, kEps) >= k;
    int count = 0;
    for (int32_t id : band) {
      if (Dominates(data[id].attrs, v) && ++count >= k) return true;
    }
    return false;
  };

  while (!heap.empty()) {
    HeapEntry e = heap.top();
    heap.pop();
    if (stats != nullptr) ++stats->heap_pops;
    if (e.is_record) {
      if (!dominated_count_reaches_k(data[e.id].attrs)) band.push_back(e.id);
    } else {
      const RTreeNode& node = tree.node(e.id);
      if (dominated_count_reaches_k(node.mbb.TopCorner())) continue;
      if (node.is_leaf) {
        for (int32_t rid : node.record_ids)
          heap.push({SumCoords(data[rid].attrs), true, rid});
      } else {
        for (int32_t child : node.entries)
          heap.push({SumCoords(tree.node(child).mbb.TopCorner()), false,
                     child});
      }
    }
  }
  return band;
}

std::vector<int32_t> KSkybandBruteForce(const Dataset& data, int k) {
  // One batched many-vs-many sweep; membership is count < k, and the
  // kernel caps at k, so the cap never changes the verdict. The kernel
  // itself is differentially pinned against the scalar Dominates() loop in
  // tests/test_exec.cc, keeping this oracle independent of the BBS path.
  ColumnStore cols(data);
  std::vector<int32_t> all(data.size());
  std::iota(all.begin(), all.end(), 0);
  std::vector<int32_t> counts(data.size());
  DominatedCounts(cols, all, all, k, kEps, counts.data());
  std::vector<int32_t> band;
  for (size_t i = 0; i < data.size(); ++i)
    if (counts[i] < k) band.push_back(data[i].id);
  return band;
}

}  // namespace utk
