#include "skyline/skyband.h"

#include <algorithm>
#include <numeric>
#include <queue>

#include "skyline/dominance.h"

namespace utk {

namespace {

struct HeapEntry {
  Scalar key;
  bool is_record;
  int32_t id;  // record id or node id
  bool operator<(const HeapEntry& o) const { return key < o.key; }
};

Scalar SumCoords(const Vec& v) {
  return std::accumulate(v.begin(), v.end(), Scalar{0});
}

}  // namespace

std::vector<int32_t> KSkyband(const Dataset& data, const RTree& tree, int k,
                              QueryStats* stats) {
  std::vector<int32_t> band;
  if (tree.empty()) return band;

  std::priority_queue<HeapEntry> heap;
  heap.push({SumCoords(tree.node(tree.root()).mbb.TopCorner()), false,
             tree.root()});

  auto dominated_count_reaches_k = [&](const Vec& v) {
    int count = 0;
    for (int32_t id : band) {
      if (Dominates(data[id].attrs, v) && ++count >= k) return true;
    }
    return false;
  };

  while (!heap.empty()) {
    HeapEntry e = heap.top();
    heap.pop();
    if (stats != nullptr) ++stats->heap_pops;
    if (e.is_record) {
      if (!dominated_count_reaches_k(data[e.id].attrs)) band.push_back(e.id);
    } else {
      const RTreeNode& node = tree.node(e.id);
      if (dominated_count_reaches_k(node.mbb.TopCorner())) continue;
      if (node.is_leaf) {
        for (int32_t rid : node.record_ids)
          heap.push({SumCoords(data[rid].attrs), true, rid});
      } else {
        for (int32_t child : node.entries)
          heap.push({SumCoords(tree.node(child).mbb.TopCorner()), false,
                     child});
      }
    }
  }
  return band;
}

std::vector<int32_t> KSkybandBruteForce(const Dataset& data, int k) {
  std::vector<int32_t> band;
  for (const Record& p : data) {
    int count = 0;
    for (const Record& q : data) {
      if (q.id == p.id) continue;
      if (Dominates(q.attrs, p.attrs)) ++count;
    }
    if (count < k) band.push_back(p.id);
  }
  return band;
}

}  // namespace utk
