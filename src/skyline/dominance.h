// Classic (attribute-wise) dominance tests (Section 2).
//
// Record p dominates p' if p has no smaller value in any dimension and the
// records do not coincide. The same test against the top corner of an MBB
// conservatively decides whether an R-tree subtree can contain non-dominated
// records.
#ifndef UTK_SKYLINE_DOMINANCE_H_
#define UTK_SKYLINE_DOMINANCE_H_

#include "common/types.h"
#include "index/rtree.h"

namespace utk {

/// True iff a dominates b: a >= b component-wise with at least one strict.
bool Dominates(const Vec& a, const Vec& b, Scalar eps = 0.0);

inline bool Dominates(const Record& a, const Record& b) {
  return Dominates(a.attrs, b.attrs);
}

/// True iff a >= b component-wise (weak dominance; equality allowed).
bool WeaklyDominates(const Vec& a, const Vec& b, Scalar eps = 0.0);

}  // namespace utk

#endif  // UTK_SKYLINE_DOMINANCE_H_
