// Classic (attribute-wise) dominance tests (Section 2).
//
// Record p dominates p' if p has no smaller value in any dimension and the
// records do not coincide. The same test against the top corner of an MBB
// conservatively decides whether an R-tree subtree can contain non-dominated
// records.
#ifndef UTK_SKYLINE_DOMINANCE_H_
#define UTK_SKYLINE_DOMINANCE_H_

#include "common/types.h"
#include "index/rtree.h"

namespace utk {

/// True iff a dominates b: a >= b component-wise with at least one strict.
/// The default tolerance is the library-wide kEps (common/types.h) — the
/// same convention Halfspace::Contains and the r-dominance classification
/// use, so a score tie and an attribute tie are judged by one yardstick.
/// Pass eps = 0 explicitly for exact comparisons.
bool Dominates(const Vec& a, const Vec& b, Scalar eps = kEps);

inline bool Dominates(const Record& a, const Record& b) {
  return Dominates(a.attrs, b.attrs);
}

/// True iff a >= b component-wise (weak dominance; equality allowed).
bool WeaklyDominates(const Vec& a, const Vec& b, Scalar eps = kEps);

/// True iff a beats b by more than `margin` in *every* dimension. With
/// margin = kEps this is the region-robust form of dominance: the score gap
/// S(a) - S(b) is a convex combination of the per-dimension gaps, so it
/// exceeds kEps for every weight vector in the simplex — a strongly
/// dominating record r-dominates (rdominance.h) with respect to every query
/// region. The live-update band (skyline/live_band.h) counts only strong
/// dominators so that its membership bound stays sound for any region.
bool StronglyDominates(const Vec& a, const Vec& b, Scalar margin);

}  // namespace utk

#endif  // UTK_SKYLINE_DOMINANCE_H_
