#include "skyline/onion.h"

#include <algorithm>

#include "geometry/lp.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "skyline/skyband.h"

namespace utk {

bool IsFirstQuadrantHullMember(const Record& p,
                               const std::vector<const Record*>& others,
                               QueryStats* stats) {
  const int d = p.Dim();
  const int nv = d - 1;  // reduced weights; w_d = 1 - sum implied
  // Variables (w, t): maximize t subject to
  //   S(p)(w) - S(q)(w) >= t  for all q,
  //   w in the closed weight simplex, t <= 1.
  std::vector<Halfspace> cons;
  cons.reserve(others.size() + nv + 2);
  for (const Record* q : others) {
    // (coef_q - coef_p).w + t <= offset_p - offset_q
    Halfspace h;
    h.a.resize(nv + 1);
    for (int i = 0; i < nv; ++i) {
      const Scalar cp = p.attrs[i] - p.attrs[d - 1];
      const Scalar cq = q->attrs[i] - q->attrs[d - 1];
      h.a[i] = cq - cp;
    }
    h.a[nv] = 1.0;
    h.b = p.attrs[d - 1] - q->attrs[d - 1];
    cons.push_back(std::move(h));
  }
  for (int i = 0; i < nv; ++i) {
    Halfspace nonneg;
    nonneg.a.assign(nv + 1, 0.0);
    nonneg.a[i] = -1.0;
    nonneg.b = 0.0;
    cons.push_back(std::move(nonneg));
  }
  Halfspace simplex;
  simplex.a.assign(nv + 1, 0.0);
  for (int i = 0; i < nv; ++i) simplex.a[i] = 1.0;
  simplex.b = 1.0;
  cons.push_back(std::move(simplex));
  Halfspace cap;
  cap.a.assign(nv + 1, 0.0);
  cap.a[nv] = 1.0;
  cap.b = 1.0;
  cons.push_back(std::move(cap));

  Vec obj(nv + 1, 0.0);
  obj[nv] = 1.0;
  if (stats != nullptr) ++stats->lp_calls;
  static obs::Counter& probes = obs::MetricRegistry::Global().GetCounter(
      "utk_onion_hull_probes_total");
  probes.Add();
  LpResult r = SolveLp(obj, cons, /*maximize=*/true);
  return r.status == LpStatus::kOptimal && EpsGe(r.objective, 0.0);
}

std::vector<std::vector<int32_t>> OnionLayers(const Dataset& data,
                                              const RTree& tree, int k,
                                              QueryStats* stats) {
  UTK_SPAN("filter.onion");
  std::vector<std::vector<int32_t>> layers;
  std::vector<int32_t> remaining = KSkyband(data, tree, k, stats);
  for (int layer = 0; layer < k && !remaining.empty(); ++layer) {
    std::vector<const Record*> pool;
    pool.reserve(remaining.size());
    for (int32_t id : remaining) pool.push_back(&data[id]);
    std::vector<int32_t> members;
    std::vector<int32_t> rest;
    for (int32_t id : remaining) {
      std::vector<const Record*> others;
      others.reserve(pool.size() - 1);
      for (const Record* q : pool)
        if (q->id != id) others.push_back(q);
      if (IsFirstQuadrantHullMember(data[id], others, stats)) {
        members.push_back(id);
      } else {
        rest.push_back(id);
      }
    }
    if (members.empty()) break;  // degenerate: no record extreme in quadrant
    layers.push_back(std::move(members));
    remaining = std::move(rest);
  }
  return layers;
}

OnionIndex::OnionIndex(const Dataset& data, const RTree& tree, int max_k,
                       QueryStats* stats)
    : data_(data), layers_(OnionLayers(data, tree, max_k, stats)) {}

std::vector<int32_t> OnionIndex::Query(const Vec& w, int k) const {
  std::vector<std::pair<Scalar, int32_t>> scored;
  const int depth = std::min<int>(k, static_cast<int>(layers_.size()));
  for (int l = 0; l < depth; ++l) {
    for (int32_t id : layers_[l]) {
      scored.emplace_back(Score(data_[id], w), id);
    }
  }
  const int kk = std::min<int>(k, static_cast<int>(scored.size()));
  std::partial_sort(scored.begin(), scored.begin() + kk, scored.end(),
                    [](const auto& a, const auto& b) {
                      if (a.first != b.first) return a.first > b.first;
                      return a.second < b.second;
                    });
  std::vector<int32_t> out;
  out.reserve(kk);
  for (int i = 0; i < kk; ++i) out.push_back(scored[i].second);
  return out;
}

int64_t OnionIndex::CandidateCount() const {
  int64_t n = 0;
  for (const auto& layer : layers_) n += static_cast<int64_t>(layer.size());
  return n;
}

std::vector<int32_t> OnionCandidates(const Dataset& data, const RTree& tree,
                                     int k, QueryStats* stats) {
  std::vector<int32_t> out;
  for (const auto& layer : OnionLayers(data, tree, k, stats))
    out.insert(out.end(), layer.begin(), layer.end());
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace utk
