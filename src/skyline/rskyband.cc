#include "skyline/rskyband.h"

#include <cassert>
#include <queue>

#include "geometry/linear.h"
#include "skyline/rdominance.h"

namespace utk {

namespace {

struct HeapEntry {
  Scalar key;
  bool is_record;
  int32_t id;
  bool operator<(const HeapEntry& o) const { return key < o.key; }
};

Scalar CornerScore(const Vec& corner, const Vec& pivot) {
  Record tmp;
  tmp.attrs = corner;
  return Score(tmp, pivot);
}

}  // namespace

RSkybandResult ComputeRSkyband(const Dataset& data, const RTree& tree,
                               const ConvexRegion& r, int k,
                               QueryStats* stats) {
  RSkybandResult result;
  auto pivot = r.Pivot();
  assert(pivot.has_value() && "query region has empty interior");
  result.pivot = *pivot;
  if (tree.empty()) return result;

  std::priority_queue<HeapEntry> heap;
  heap.push({CornerScore(tree.node(tree.root()).mbb.TopCorner(), result.pivot),
             false, tree.root()});

  while (!heap.empty()) {
    HeapEntry e = heap.top();
    heap.pop();
    if (stats != nullptr) ++stats->heap_pops;
    if (e.is_record) {
      // Collect all confirmed members that r-dominate this record; keep it
      // if there are fewer than k.
      std::vector<int> doms;
      bool pruned = false;
      for (size_t i = 0; i < result.ids.size(); ++i) {
        if (RDominance(data[result.ids[i]], data[e.id], r, stats) ==
            RDom::kDominates) {
          doms.push_back(static_cast<int>(i));
          if (static_cast<int>(doms.size()) >= k) {
            pruned = true;
            break;
          }
        }
      }
      if (!pruned) {
        result.ids.push_back(e.id);
        result.dominators.push_back(std::move(doms));
      }
    } else {
      const RTreeNode& node = tree.node(e.id);
      // Prune the subtree if k members r-dominate its optimistic top corner.
      int count = 0;
      bool pruned = false;
      for (int32_t cid : result.ids) {
        if (RDominatesCorner(data[cid], node.mbb.TopCorner(), r, stats) &&
            ++count >= k) {
          pruned = true;
          break;
        }
      }
      if (pruned) continue;
      if (node.is_leaf) {
        for (int32_t rid : node.record_ids)
          heap.push({Score(data[rid], result.pivot), true, rid});
      } else {
        for (int32_t child : node.entries)
          heap.push({CornerScore(tree.node(child).mbb.TopCorner(),
                                 result.pivot),
                     false, child});
      }
    }
  }
  if (stats != nullptr)
    stats->candidates = static_cast<int64_t>(result.ids.size());
  return result;
}

std::vector<int32_t> RSkybandBruteForce(const Dataset& data,
                                        const ConvexRegion& r, int k) {
  std::vector<int32_t> band;
  for (const Record& p : data) {
    int count = 0;
    for (const Record& q : data) {
      if (q.id == p.id) continue;
      if (RDominance(q, p, r) == RDom::kDominates) ++count;
    }
    if (count < k) band.push_back(p.id);
  }
  return band;
}

}  // namespace utk
