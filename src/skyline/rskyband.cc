#include "skyline/rskyband.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <optional>
#include <queue>

#include "exec/kernels.h"
#include "exec/simd.h"
#include "geometry/linear.h"
#include "obs/trace.h"
#include "skyline/rdominance.h"

namespace utk {

namespace {

struct HeapEntry {
  Scalar key;
  bool is_record;
  int32_t id;
  bool operator<(const HeapEntry& o) const { return key < o.key; }
};

Scalar CornerScore(const Vec& corner, const Vec& pivot) {
  Record tmp;
  tmp.attrs = corner;
  return Score(tmp, pivot);
}

// Per-query r-dominance dispatcher: the columnar box fast path when a
// mirroring ColumnStore is available and R is a box, the generic
// RDominance / RDominatesCorner otherwise. Both roads produce identical
// bits (ClassifyScoreRange is shared and BoxGapEvaluator replays
// DiffScore + RangeOf's arithmetic order).
class RDomDispatch {
 public:
  RDomDispatch(const Dataset& data, const ConvexRegion& r,
               const ColumnStore* cols, QueryStats* stats)
      : data_(data), r_(r), stats_(stats) {
    if (cols != nullptr && !cols->empty()) {
      gap_.emplace(*cols, r);
      if (!gap_->valid()) gap_.reset();
    }
  }

  /// RDominance(data[p], data[q], r) == kDominates.
  bool Dominates(int32_t p, int32_t q) const {
    if (gap_.has_value()) {
      if (stats_ != nullptr) ++stats_->rdom_tests;
      const auto [lo, hi] = gap_->Range(p, q);
      return ClassifyScoreRange(lo, hi) == RDom::kDominates;
    }
    return RDominance(data_[p], data_[q], r_, stats_) == RDom::kDominates;
  }

  /// RDominance(pruner, data[q], r) == kDominates (pruners live outside
  /// `data` — other shards' records — so they address the store by attrs).
  bool PrunerDominates(const Record& pruner, int32_t q) const {
    if (gap_.has_value()) {
      if (stats_ != nullptr) ++stats_->rdom_tests;
      const auto [lo, hi] = gap_->Range(pruner.attrs, q);
      return ClassifyScoreRange(lo, hi) == RDom::kDominates;
    }
    return RDominance(pruner, data_[q], r_, stats_) == RDom::kDominates;
  }

  /// The member-vs-candidate scan both ComputeRSkyband call sites share:
  /// walks `members` in order, appends the index of every member that
  /// r-dominates `q` to `doms`, and stops — returning true — as soon as
  /// `doms` reaches `cap`. On a SIMD tier with the box fast path active
  /// the ranges are computed SimdWidth() lanes at a time; lanes are then
  /// consumed in member order, so the break position, the collected
  /// indices, and the rdom_tests count are exactly the scalar loop's
  /// (speculative lanes past the break are computed but never counted).
  bool CollectDominators(const std::vector<int32_t>& members, int32_t q,
                         int cap, std::vector<int>* doms) const {
    const int width = gap_.has_value() ? SimdWidth() : 1;
    if (width > 1) {
      Scalar lo[8], hi[8];
      assert(width <= 8);
      const size_t n = members.size();
      for (size_t i = 0; i < n; i += width) {
        const size_t m = std::min<size_t>(width, n - i);
        gap_->RangeBatch({members.data() + i, m}, q, lo, hi);
        for (size_t j = 0; j < m; ++j) {
          if (stats_ != nullptr) ++stats_->rdom_tests;
          if (ClassifyScoreRange(lo[j], hi[j]) != RDom::kDominates) continue;
          doms->push_back(static_cast<int>(i + j));
          if (static_cast<int>(doms->size()) >= cap) return true;
        }
      }
      return false;
    }
    for (size_t i = 0; i < members.size(); ++i) {
      if (Dominates(members[i], q)) {
        doms->push_back(static_cast<int>(i));
        if (static_cast<int>(doms->size()) >= cap) return true;
      }
    }
    return false;
  }

  /// RDominatesCorner(data[p], corner, r).
  bool DominatesCorner(int32_t p, const Vec& corner) const {
    if (gap_.has_value()) {
      if (stats_ != nullptr) ++stats_->rdom_tests;
      const auto [lo, hi] = gap_->Range(p, corner);
      return EpsGe(lo, 0.0) && EpsGt(hi, 0.0);
    }
    return RDominatesCorner(data_[p], corner, r_, stats_);
  }

 private:
  const Dataset& data_;
  const ConvexRegion& r_;
  QueryStats* stats_;
  std::optional<BoxGapEvaluator> gap_;
};

}  // namespace

RSkybandResult ComputeRSkyband(const Dataset& data, const RTree& tree,
                               const ConvexRegion& r, int k,
                               QueryStats* stats, const ColumnStore* cols) {
  static const std::vector<Record> kNoPruners;
  return ComputeRSkyband(data, tree, r, k, kNoPruners, stats, cols);
}

RSkybandResult ComputeRSkyband(const Dataset& data, const RTree& tree,
                               const ConvexRegion& r, int k,
                               const std::vector<Record>& pruners,
                               QueryStats* stats, const ColumnStore* cols) {
  UTK_SPAN("filter.rskyband");
  RSkybandResult result;
  auto pivot = r.Pivot();
  assert(pivot.has_value() && "query region has empty interior");
  result.pivot = *pivot;
  if (tree.empty()) return result;

  const bool soa = cols != nullptr && !cols->empty();
  RDomDispatch rdom(data, r, cols, stats);

  // Pruners ordered strongest-first at the pivot. Together with the heap
  // key (an entry's pivot score) this admits an exact early break in every
  // scan below: r-dominating a record or an optimistic corner requires a
  // region-wide gap >= -kEps (rdominance.h), and the pivot lies in R, so a
  // record whose pivot score falls kEps below the entry's key — and, in a
  // descending list, everything after it — can be skipped wholesale.
  std::vector<int> pruner_order(pruners.size());
  std::iota(pruner_order.begin(), pruner_order.end(), 0);
  std::vector<Scalar> pruner_score(pruners.size());
  for (size_t i = 0; i < pruners.size(); ++i)
    pruner_score[i] = Score(pruners[i], result.pivot);
  std::sort(pruner_order.begin(), pruner_order.end(),
            [&](int a, int b) { return pruner_score[a] > pruner_score[b]; });
  // Confirmed members pop (and append) in decreasing pivot-score order, so
  // their score list is born sorted and the same break applies.
  std::vector<Scalar> member_score;

  // Leaf-scan scratch: one batched ScoreBatch per popped leaf instead of a
  // Score() pointer chase per record.
  std::vector<Scalar> leaf_scores;

  std::priority_queue<HeapEntry> heap;
  heap.push({CornerScore(tree.node(tree.root()).mbb.TopCorner(), result.pivot),
             false, tree.root()});

  while (!heap.empty()) {
    HeapEntry e = heap.top();
    heap.pop();
    if (stats != nullptr) ++stats->heap_pops;
    if (e.is_record) {
      // Count external pruners first (they are chosen to be strong, so the
      // k threshold trips early), then collect the confirmed members that
      // r-dominate this record; keep it if the total stays below k.
      int pruner_doms = 0;
      bool pruned = false;
      for (int i : pruner_order) {
        if (pruner_score[i] < e.key - kEps) break;
        if (rdom.PrunerDominates(pruners[i], e.id) && ++pruner_doms >= k) {
          pruned = true;
          break;
        }
      }
      std::vector<int> doms;
      if (!pruned)
        pruned = rdom.CollectDominators(result.ids, e.id, k - pruner_doms,
                                        &doms);
      if (!pruned) {
        result.ids.push_back(e.id);
        result.dominators.push_back(std::move(doms));
        member_score.push_back(e.key);
      }
    } else {
      const RTreeNode& node = tree.node(e.id);
      // Prune the subtree if k records (pruners or members) r-dominate its
      // optimistic top corner.
      int count = 0;
      bool pruned = false;
      for (int i : pruner_order) {
        if (pruner_score[i] < e.key - kEps) break;
        if (RDominatesCorner(pruners[i], node.mbb.TopCorner(), r, stats) &&
            ++count >= k) {
          pruned = true;
          break;
        }
      }
      for (size_t i = 0; !pruned && i < result.ids.size(); ++i) {
        if (member_score[i] < e.key - kEps) break;
        if (rdom.DominatesCorner(result.ids[i], node.mbb.TopCorner()) &&
            ++count >= k) {
          pruned = true;
          break;
        }
      }
      if (pruned) continue;
      if (node.is_leaf) {
        if (soa) {
          leaf_scores.resize(node.record_ids.size());
          ScoreBatch(*cols, result.pivot, node.record_ids,
                     leaf_scores.data());
          for (size_t i = 0; i < node.record_ids.size(); ++i)
            heap.push({leaf_scores[i], true, node.record_ids[i]});
        } else {
          for (int32_t rid : node.record_ids)
            heap.push({Score(data[rid], result.pivot), true, rid});
        }
      } else {
        for (int32_t child : node.entries)
          heap.push({CornerScore(tree.node(child).mbb.TopCorner(),
                                 result.pivot),
                     false, child});
      }
    }
  }
  if (stats != nullptr)
    stats->candidates = static_cast<int64_t>(result.ids.size());
  return result;
}

RSkybandResult ComputeRSkybandFromPool(const Dataset& data,
                                       std::vector<int32_t> pool,
                                       const ConvexRegion& r, int k,
                                       QueryStats* stats,
                                       const ColumnStore* cols) {
  UTK_SPAN_VAL("filter.pool", static_cast<int64_t>(pool.size()));
  RSkybandResult result;
  auto pivot = r.Pivot();
  assert(pivot.has_value() && "query region has empty interior");
  result.pivot = *pivot;

  const bool soa = cols != nullptr && !cols->empty();
  RDomDispatch rdom(data, r, cols, stats);

  if (soa) {
    // One batched pass over the pool; the sort then runs on a flat score
    // array instead of recomputing Score() per comparison.
    std::vector<Scalar> pool_score(pool.size());
    ScoreBatch(*cols, result.pivot, pool, pool_score.data());
    std::vector<int32_t> order(pool.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](int32_t a, int32_t b) {
      const Scalar sa = pool_score[a], sb = pool_score[b];
      return sa != sb ? sa > sb : pool[a] < pool[b];
    });
    std::vector<int32_t> sorted(pool.size());
    for (size_t i = 0; i < order.size(); ++i) sorted[i] = pool[order[i]];
    pool = std::move(sorted);
  } else {
    std::sort(pool.begin(), pool.end(), [&](int32_t a, int32_t b) {
      const Scalar sa = Score(data[a], result.pivot);
      const Scalar sb = Score(data[b], result.pivot);
      return sa != sb ? sa > sb : a < b;
    });
  }

  for (int32_t id : pool) {
    std::vector<int> doms;
    const bool pruned = rdom.CollectDominators(result.ids, id, k, &doms);
    if (!pruned) {
      result.ids.push_back(id);
      result.dominators.push_back(std::move(doms));
    }
  }
  if (stats != nullptr)
    stats->candidates = static_cast<int64_t>(result.ids.size());
  return result;
}

std::vector<int32_t> RSkybandBruteForce(const Dataset& data,
                                        const ConvexRegion& r, int k) {
  std::vector<int32_t> band;
  for (const Record& p : data) {
    int count = 0;
    for (const Record& q : data) {
      if (q.id == p.id) continue;
      if (RDominance(q, p, r) == RDom::kDominates) ++count;
    }
    if (count < k) band.push_back(p.id);
  }
  return band;
}

}  // namespace utk
