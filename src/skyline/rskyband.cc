#include "skyline/rskyband.h"

#include <algorithm>
#include <cassert>
#include <numeric>
#include <queue>

#include "geometry/linear.h"
#include "skyline/rdominance.h"

namespace utk {

namespace {

struct HeapEntry {
  Scalar key;
  bool is_record;
  int32_t id;
  bool operator<(const HeapEntry& o) const { return key < o.key; }
};

Scalar CornerScore(const Vec& corner, const Vec& pivot) {
  Record tmp;
  tmp.attrs = corner;
  return Score(tmp, pivot);
}

}  // namespace

RSkybandResult ComputeRSkyband(const Dataset& data, const RTree& tree,
                               const ConvexRegion& r, int k,
                               QueryStats* stats) {
  static const std::vector<Record> kNoPruners;
  return ComputeRSkyband(data, tree, r, k, kNoPruners, stats);
}

RSkybandResult ComputeRSkyband(const Dataset& data, const RTree& tree,
                               const ConvexRegion& r, int k,
                               const std::vector<Record>& pruners,
                               QueryStats* stats) {
  RSkybandResult result;
  auto pivot = r.Pivot();
  assert(pivot.has_value() && "query region has empty interior");
  result.pivot = *pivot;
  if (tree.empty()) return result;

  // Pruners ordered strongest-first at the pivot. Together with the heap
  // key (an entry's pivot score) this admits an exact early break in every
  // scan below: r-dominating a record or an optimistic corner requires a
  // region-wide gap >= -kEps (rdominance.h), and the pivot lies in R, so a
  // record whose pivot score falls kEps below the entry's key — and, in a
  // descending list, everything after it — can be skipped wholesale.
  std::vector<int> pruner_order(pruners.size());
  std::iota(pruner_order.begin(), pruner_order.end(), 0);
  std::vector<Scalar> pruner_score(pruners.size());
  for (size_t i = 0; i < pruners.size(); ++i)
    pruner_score[i] = Score(pruners[i], result.pivot);
  std::sort(pruner_order.begin(), pruner_order.end(),
            [&](int a, int b) { return pruner_score[a] > pruner_score[b]; });
  // Confirmed members pop (and append) in decreasing pivot-score order, so
  // their score list is born sorted and the same break applies.
  std::vector<Scalar> member_score;

  std::priority_queue<HeapEntry> heap;
  heap.push({CornerScore(tree.node(tree.root()).mbb.TopCorner(), result.pivot),
             false, tree.root()});

  while (!heap.empty()) {
    HeapEntry e = heap.top();
    heap.pop();
    if (stats != nullptr) ++stats->heap_pops;
    if (e.is_record) {
      // Count external pruners first (they are chosen to be strong, so the
      // k threshold trips early), then collect the confirmed members that
      // r-dominate this record; keep it if the total stays below k.
      int pruner_doms = 0;
      bool pruned = false;
      for (int i : pruner_order) {
        if (pruner_score[i] < e.key - kEps) break;
        if (RDominance(pruners[i], data[e.id], r, stats) ==
                RDom::kDominates &&
            ++pruner_doms >= k) {
          pruned = true;
          break;
        }
      }
      std::vector<int> doms;
      for (size_t i = 0; !pruned && i < result.ids.size(); ++i) {
        if (RDominance(data[result.ids[i]], data[e.id], r, stats) ==
            RDom::kDominates) {
          doms.push_back(static_cast<int>(i));
          if (static_cast<int>(doms.size()) + pruner_doms >= k) {
            pruned = true;
            break;
          }
        }
      }
      if (!pruned) {
        result.ids.push_back(e.id);
        result.dominators.push_back(std::move(doms));
        member_score.push_back(e.key);
      }
    } else {
      const RTreeNode& node = tree.node(e.id);
      // Prune the subtree if k records (pruners or members) r-dominate its
      // optimistic top corner.
      int count = 0;
      bool pruned = false;
      for (int i : pruner_order) {
        if (pruner_score[i] < e.key - kEps) break;
        if (RDominatesCorner(pruners[i], node.mbb.TopCorner(), r, stats) &&
            ++count >= k) {
          pruned = true;
          break;
        }
      }
      for (size_t i = 0; !pruned && i < result.ids.size(); ++i) {
        if (member_score[i] < e.key - kEps) break;
        if (RDominatesCorner(data[result.ids[i]], node.mbb.TopCorner(), r,
                             stats) &&
            ++count >= k) {
          pruned = true;
          break;
        }
      }
      if (pruned) continue;
      if (node.is_leaf) {
        for (int32_t rid : node.record_ids)
          heap.push({Score(data[rid], result.pivot), true, rid});
      } else {
        for (int32_t child : node.entries)
          heap.push({CornerScore(tree.node(child).mbb.TopCorner(),
                                 result.pivot),
                     false, child});
      }
    }
  }
  if (stats != nullptr)
    stats->candidates = static_cast<int64_t>(result.ids.size());
  return result;
}

RSkybandResult ComputeRSkybandFromPool(const Dataset& data,
                                       std::vector<int32_t> pool,
                                       const ConvexRegion& r, int k,
                                       QueryStats* stats) {
  RSkybandResult result;
  auto pivot = r.Pivot();
  assert(pivot.has_value() && "query region has empty interior");
  result.pivot = *pivot;

  std::sort(pool.begin(), pool.end(), [&](int32_t a, int32_t b) {
    const Scalar sa = Score(data[a], result.pivot);
    const Scalar sb = Score(data[b], result.pivot);
    return sa != sb ? sa > sb : a < b;
  });
  for (int32_t id : pool) {
    std::vector<int> doms;
    bool pruned = false;
    for (size_t i = 0; i < result.ids.size(); ++i) {
      if (RDominance(data[result.ids[i]], data[id], r, stats) ==
          RDom::kDominates) {
        doms.push_back(static_cast<int>(i));
        if (static_cast<int>(doms.size()) >= k) {
          pruned = true;
          break;
        }
      }
    }
    if (!pruned) {
      result.ids.push_back(id);
      result.dominators.push_back(std::move(doms));
    }
  }
  if (stats != nullptr)
    stats->candidates = static_cast<int64_t>(result.ids.size());
  return result;
}

std::vector<int32_t> RSkybandBruteForce(const Dataset& data,
                                        const ConvexRegion& r, int k) {
  std::vector<int32_t> band;
  for (const Record& p : data) {
    int count = 0;
    for (const Record& q : data) {
      if (q.id == p.id) continue;
      if (RDominance(q, p, r) == RDom::kDominates) ++count;
    }
    if (count < k) band.push_back(p.id);
  }
  return band;
}

}  // namespace utk
