#include "skyline/graph.h"

#include <cassert>

namespace utk {

RDominanceGraph RDominanceGraph::Build(const RSkybandResult& band) {
  RDominanceGraph g;
  g.n_ = static_cast<int>(band.ids.size());
  g.parents_.resize(g.n_);
  g.children_.resize(g.n_);
  g.ancestors_.assign(g.n_, Bitset(g.n_));
  g.descendants_.assign(g.n_, Bitset(g.n_));
  g.active_ = Bitset(g.n_);

  for (int i = 0; i < g.n_; ++i) {
    g.active_.Set(i);
    for (int p : band.dominators[i]) {
      assert(p < i && "dominators must be confirmed before their dominees");
      g.parents_[i].push_back(p);
      g.children_[p].push_back(i);
      g.ancestors_[i].Set(p);
      g.ancestors_[i].UnionWith(g.ancestors_[p]);
    }
  }
  for (int i = g.n_ - 1; i >= 0; --i) {
    for (int c : g.children_[i]) {
      g.descendants_[i].Set(c);
      g.descendants_[i].UnionWith(g.descendants_[c]);
    }
  }
  return g;
}

}  // namespace utk
