#include "skyline/rdominance.h"

#include <cassert>

#include "geometry/linear.h"

namespace utk {

namespace {

// Reduced coefficients of f(w) = S(p)(w) - S(q)(w).
void DiffScore(const Vec& p, const Vec& q, Vec* coef, Scalar* offset) {
  const int d = static_cast<int>(p.size());
  coef->resize(d - 1);
  *offset = p[d - 1] - q[d - 1];
  for (int i = 0; i < d - 1; ++i)
    (*coef)[i] = (p[i] - p[d - 1]) - (q[i] - q[d - 1]);
}

}  // namespace

RDom ClassifyScoreRange(Scalar lo, Scalar hi) {
  if (EpsGe(lo, 0.0) && EpsGt(hi, 0.0)) return RDom::kDominates;
  if (EpsLe(hi, 0.0) && EpsLt(lo, 0.0)) return RDom::kDominatedBy;
  if (EpsGe(lo, 0.0) && EpsLe(hi, 0.0)) return RDom::kEqual;
  return RDom::kIncomparable;
}

RDom RDominance(const Record& p, const Record& q, const ConvexRegion& r,
                QueryStats* stats) {
  if (stats != nullptr) ++stats->rdom_tests;
  Vec coef;
  Scalar offset;
  DiffScore(p.attrs, q.attrs, &coef, &offset);
  auto range = r.RangeOf(coef, offset);
  assert(range.has_value() && "r-dominance test over an empty region");
  return ClassifyScoreRange(range->first, range->second);
}

bool RDominatesCorner(const Record& q, const Vec& corner,
                      const ConvexRegion& r, QueryStats* stats) {
  if (stats != nullptr) ++stats->rdom_tests;
  Vec coef;
  Scalar offset;
  DiffScore(q.attrs, corner, &coef, &offset);
  auto range = r.RangeOf(coef, offset);
  assert(range.has_value());
  // q r-dominates the corner when S(q) >= S(corner) everywhere in R with a
  // strict gap somewhere.
  return EpsGe(range->first, 0.0) && EpsGt(range->second, 0.0);
}

}  // namespace utk
