#include "skyline/rdominance.h"

#include <cassert>

#include "geometry/linear.h"

namespace utk {

namespace {

// Reduced coefficients of f(w) = S(p)(w) - S(q)(w).
void DiffScore(const Vec& p, const Vec& q, Vec* coef, Scalar* offset) {
  const int d = static_cast<int>(p.size());
  coef->resize(d - 1);
  *offset = p[d - 1] - q[d - 1];
  for (int i = 0; i < d - 1; ++i)
    (*coef)[i] = (p[i] - p[d - 1]) - (q[i] - q[d - 1]);
}

}  // namespace

RDom RDominance(const Record& p, const Record& q, const ConvexRegion& r,
                QueryStats* stats) {
  if (stats != nullptr) ++stats->rdom_tests;
  Vec coef;
  Scalar offset;
  DiffScore(p.attrs, q.attrs, &coef, &offset);
  auto range = r.RangeOf(coef, offset);
  assert(range.has_value() && "r-dominance test over an empty region");
  const auto [lo, hi] = *range;
  if (lo >= -kEps && hi > kEps) return RDom::kDominates;
  if (hi <= kEps && lo < -kEps) return RDom::kDominatedBy;
  if (lo >= -kEps && hi <= kEps) return RDom::kEqual;
  return RDom::kIncomparable;
}

bool RDominatesCorner(const Record& q, const Vec& corner,
                      const ConvexRegion& r, QueryStats* stats) {
  if (stats != nullptr) ++stats->rdom_tests;
  Vec coef;
  Scalar offset;
  DiffScore(q.attrs, corner, &coef, &offset);
  auto range = r.RangeOf(coef, offset);
  assert(range.has_value());
  // q r-dominates the corner when S(q) >= S(corner) everywhere in R with a
  // strict gap somewhere.
  return range->first >= -kEps && range->second > kEps;
}

}  // namespace utk
