#include "skyline/dominance.h"

namespace utk {

bool Dominates(const Vec& a, const Vec& b, Scalar eps) {
  bool strict = false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (EpsLt(a[i], b[i], eps)) return false;
    if (EpsGt(a[i], b[i], eps)) strict = true;
  }
  return strict;
}

bool WeaklyDominates(const Vec& a, const Vec& b, Scalar eps) {
  for (size_t i = 0; i < a.size(); ++i)
    if (EpsLt(a[i], b[i], eps)) return false;
  return true;
}

bool StronglyDominates(const Vec& a, const Vec& b, Scalar margin) {
  for (size_t i = 0; i < a.size(); ++i)
    if (!EpsGt(a[i], b[i], margin)) return false;
  return true;
}

}  // namespace utk
