#include "skyline/live_band.h"

#include <algorithm>
#include <cassert>

#include "skyline/dominance.h"

namespace utk {

int CountStrongDominators(const Dataset& data, const RTree& tree,
                          const Record& rec, int cap) {
  if (tree.empty() || cap <= 0) return 0;
  int count = 0;
  std::vector<int32_t> stack = {tree.root()};
  while (!stack.empty()) {
    const RTreeNode& n = tree.node(stack.back());
    stack.pop_back();
    // A strong dominator exceeds rec in every dimension by > kEps, so the
    // subtree is only worth visiting when its top corner does.
    if (!StronglyDominates(n.mbb.TopCorner(), rec.attrs, kEps)) continue;
    if (n.is_leaf) {
      for (int32_t rid : n.record_ids) {
        if (rid == rec.id) continue;
        if (StronglyDominates(data[rid].attrs, rec.attrs, kEps) &&
            ++count >= cap)
          return cap;
      }
    } else {
      for (int32_t child : n.entries) stack.push_back(child);
    }
  }
  return count;
}

LiveSkyband::LiveSkyband(int k, int slack)
    : k_(k), cap_(k + std::max(slack, 1)), slack_(std::max(slack, 1)) {
  assert(k >= 1);
}

void LiveSkyband::Rebuild(const Dataset& data, const RTree& tree) {
  count_.clear();
  deletes_since_rebuild_ = 0;
  ++rebuilds_;
  if (tree.empty()) return;
  std::vector<int32_t> stack = {tree.root()};
  while (!stack.empty()) {
    const RTreeNode& n = tree.node(stack.back());
    stack.pop_back();
    if (n.is_leaf) {
      for (int32_t rid : n.record_ids) {
        const int c = CountStrongDominators(data, tree, data[rid], cap_);
        if (c < cap_) count_.emplace(rid, c);
      }
    } else {
      for (int32_t child : n.entries) stack.push_back(child);
    }
  }
}

void LiveSkyband::Insert(const Dataset& data, const RTree& tree, int32_t id) {
  const Record& rec = data[id];
  // Demote the tracked records the newcomer strongly dominates.
  for (auto it = count_.begin(); it != count_.end();) {
    if (it->first != id &&
        StronglyDominates(rec.attrs, data[it->first].attrs, kEps) &&
        ++it->second >= cap_) {
      it = count_.erase(it);  // saturated: exactness ends here
    } else {
      ++it;
    }
  }
  const int c = CountStrongDominators(data, tree, rec, cap_);
  if (c < cap_) count_[id] = c;
}

bool LiveSkyband::Erase(const Dataset& data, int32_t id) {
  if (deletes_since_rebuild_ >= slack_) return false;
  ++deletes_since_rebuild_;
  count_.erase(id);
  // Promote the tracked records the deleted one shielded.
  const Record& rec = data[id];
  for (auto& [pid, c] : count_) {
    if (StronglyDominates(rec.attrs, data[pid].attrs, kEps)) --c;
  }
  return true;
}

std::vector<int32_t> LiveSkyband::BandIds() const {
  std::vector<int32_t> ids;
  ids.reserve(count_.size());
  for (const auto& [id, c] : count_)
    if (c < k_) ids.push_back(id);
  std::sort(ids.begin(), ids.end());
  return ids;
}

bool LiveSkyband::Contains(int32_t id) const {
  auto it = count_.find(id);
  return it != count_.end() && it->second < k_;
}

int64_t LiveSkyband::band_size() const {
  int64_t n = 0;
  for (const auto& [id, c] : count_)
    if (c < k_) ++n;
  return n;
}

}  // namespace utk
